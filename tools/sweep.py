#!/usr/bin/env python3
"""Run HPL experiment sweeps under the fault-tolerant measurement service.

Two ways to drive the same service core:

**One-shot** (the classic path — no subcommand)::

    python tools/sweep.py --out runs/sweep1
    # ... SIGKILL at any point (workers, supervisor, or both) ...
    python tools/sweep.py --out runs/sweep1 --resume

``--resume`` replays the journal, skips runs already done, and restarts
the rest from their latest checkpoint; the results are bit-identical to
a sweep that was never interrupted (``tools/resume_equivalence.py`` is
the CI gate that enforces exactly that).  ``--dry-run`` prints the
admission plan — which runs would be admitted, requeued, or skipped —
and touches nothing.

**Service mode** (the long-running daemon)::

    python tools/sweep.py serve --out runs/svc &        # start the daemon
    python tools/sweep.py submit --out runs/svc --preset quick --wait
    python tools/sweep.py status --out runs/svc
    python tools/sweep.py watch --out runs/svc hpl-openblas-n1000
    python tools/sweep.py shutdown --out runs/svc       # drain + exit

The daemon owns the worker pool and admits jobs over a unix socket
(``<out>/service.sock``): submits are idempotent by spec digest (a
resubmitted finished spec answers from the journal with zero launches),
admission is journaled+fsync'd before it is acknowledged, and a daemon
SIGKILLed at any instant reboots with ``serve`` to the exact same
state — orphaned workers reaped, queued jobs still queued.

Exit codes: 0 success; 1 failures (or unfinished runs); 3 drained on
SIGTERM (``--resume`` or re-``serve`` finishes the job); 4 the journal
is corrupt and cannot be trusted (restore ``journal.jsonl`` or its
``.bak``, or start fresh).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.supervisor import (  # noqa: E402
    DONE,
    FAILED,
    CANCELLED,
    JournalError,
    Journal,
    MeasurementService,
    RetryPolicy,
    RunSpec,
    ServiceClient,
    ServiceCore,
    ServiceError,
    Supervisor,
    socket_path_for,
)

#: Exit code when the sweep drained on SIGTERM (resume to continue).
EXIT_DRAINED = 3
#: Exit code when the journal is corrupt (mid-file tear, bad version,
#: unknown events): nothing was touched; restore the journal (or its
#: ``.bak`` from the last compaction) or start a fresh out dir.
EXIT_JOURNAL = 4

#: Sweep presets: problem sizes kept small enough to iterate on quickly.
PRESETS = {
    "quick": {"n_values": [1000, 2000], "variants": ["openblas"]},
    "paper": {"n_values": [2000, 4000, 8000], "variants": ["openblas", "intel"]},
    # 16 jobs sized for fleet/soak testing: big enough that a pool shows
    # real overlap, small enough that CI chews through them in seconds.
    "fleet": {
        "n_values": [800, 900, 1000, 1100, 1200, 1300, 1400, 1500],
        "variants": ["openblas", "intel"],
    },
}

SUBCOMMANDS = ("serve", "submit", "watch", "status", "shutdown")


def build_runs(args: argparse.Namespace) -> list[RunSpec]:
    preset = PRESETS[args.preset]
    n_values = args.n or preset["n_values"]
    variants = args.variants or preset["variants"]
    runs = []
    for variant in variants:
        for n in n_values:
            params = {
                "machine": args.machine,
                "n": n,
                "nb": args.nb,
                "variant": variant,
                "slice_s": args.slice_s,
            }
            runs.append(RunSpec(f"hpl-{variant}-n{n}", "hpl", params))
    if args.flaky:
        # A deterministic self-crashing run: dies with SIGKILL mid-run on
        # attempt 1, resumes from its checkpoint on attempt 2.  For
        # exercising the crash-isolation machinery end to end.
        runs.append(
            RunSpec(
                "flaky-selftest",
                "flaky-hpl",
                {
                    "machine": args.machine,
                    # The longest point of the sweep, so the run is still
                    # in flight (with a checkpoint down) at crash_at_s.
                    "n": max(n_values),
                    "nb": args.nb,
                    "variant": variants[0],
                    "slice_s": args.slice_s,
                    "crash_at_s": 0.08,
                    "crash_on_attempts": [1],
                },
            )
        )
    if args.chaos_seed is not None:
        inject_chaos(runs, args.chaos_seed)
    return runs


def inject_chaos(runs: list[RunSpec], seed: int) -> None:
    """Deterministically seed some runs with first-attempt faults.

    Roughly a fifth of the sweep self-crashes (SIGKILL mid-run) and a
    tenth wedges (heartbeats with frozen sim time — the stuck/migration
    path), always on attempt 1 only.  The fault parameters change how a
    run *executes*, never what it computes, so a chaos sweep must still
    end byte-identical to a calm one — that is the property the chaos
    fleet tests assert.
    """
    rng = random.Random(f"chaos:{seed}")
    injected = []
    for spec in runs:
        roll = rng.random()
        if roll < 0.2:
            spec.params.update(crash_at_s=0.06, crash_on_attempts=[1])
            injected.append(f"{spec.run_id}:crash")
        elif roll < 0.3:
            spec.params.update(stall_at_s=0.06, stall_on_attempts=[1])
            injected.append(f"{spec.run_id}:stall")
    print(f"[sweep] chaos seed {seed}: {', '.join(injected) or 'no faults drawn'}")


def print_metrics(supervisor: Supervisor) -> None:
    counters = supervisor.metrics.as_dict()["counters"]
    keys = (
        "fleet.launch",
        "fleet.done",
        "fleet.retry",
        "fleet.migration",
        "fleet.preempt",
        "fleet.cache_hit",
        "fleet.failed",
    )
    parts = [f"{k.split('.', 1)[1]}={int(counters[k])}" for k in keys if k in counters]
    kills = [
        f"{k.split('|', 1)[1]}_kills={int(v)}"
        for k, v in counters.items()
        if k.startswith("fleet.liveness_kill|")
    ]
    print(f"[sweep] fleet metrics: {' '.join(parts + kills) or 'none'}")


# -- admission planning (--dry-run) ------------------------------------------


def dry_run_plan(args: argparse.Namespace, runs: list[RunSpec]) -> int:
    """Print what admission would do, touching nothing on disk."""
    journal_path = os.path.join(args.out, "journal.jsonl")
    records = {}
    if args.resume and os.path.exists(journal_path) and os.path.getsize(journal_path):
        records = Journal.replay(journal_path).records
    plans = {"admit": 0, "skip": 0, "requeue": 0, "resume": 0}
    print(f"{'run':28s} {'plan':8s} reason")
    for spec in runs:
        existing = records.get(spec.run_id)
        if existing is None:
            plan, why = "admit", "new spec"
        elif existing.status == DONE:
            plan, why = "skip", "already done" + (
                " (cached)" if existing.cached else ""
            )
        elif existing.status in (FAILED, CANCELLED):
            plan, why = "requeue", f"was {existing.status}; fresh attempt budget"
        else:
            plan, why = "resume", (
                f"{existing.status}, attempt {existing.attempts}, "
                f"checkpoint {existing.checkpoint_path or 'none'}"
            )
        plans[plan] += 1
        print(f"{spec.run_id:28s} {plan:8s} {why}")
    summary = ", ".join(f"{v} {k}" for k, v in plans.items() if v)
    print(f"[sweep] dry run: {summary or 'nothing to do'}; no files were touched")
    return 0


# -- service mode ------------------------------------------------------------


def add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", default="runs/sweep", help="output directory")
    parser.add_argument("--socket", default=None,
                        help="service socket path (default: <out>/service.sock)")


def make_client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(
        args.socket or socket_path_for(args.out),
        retry=RetryPolicy(attempts=5, base_s=0.2, jitter_seed=0),
    )


def cmd_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sweep.py serve", description="run the measurement daemon",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    add_service_args(parser)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--backoff-s", type=float, default=0.5)
    parser.add_argument("--jitter-seed", type=int, default=None)
    parser.add_argument("--timeout-s", type=float, default=300.0)
    parser.add_argument("--stuck-after-s", type=float, default=30.0)
    parser.add_argument("--checkpoint-every-s", type=float, default=0.1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--cache-max-entries", type=int, default=None)
    parser.add_argument("--cache-max-bytes", type=int, default=None)
    parser.add_argument("--max-pending", type=int, default=None,
                        help="admission backpressure: reject submits past "
                             "this many queued runs")
    parser.add_argument("--compact-threshold-bytes", type=int,
                        default=8 * 1024 * 1024,
                        help="compact the journal on boot past this size")
    args = parser.parse_args(argv)

    core = ServiceCore(
        args.out,
        max_attempts=args.max_attempts,
        backoff_s=args.backoff_s,
        wall_timeout_s=args.timeout_s,
        checkpoint_every_s=args.checkpoint_every_s,
        workers=args.workers,
        stuck_after_s=args.stuck_after_s,
        jitter_seed=args.jitter_seed,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
        max_pending=args.max_pending,
        compact_threshold_bytes=args.compact_threshold_bytes,
    )
    # The daemon always boots in resume mode: an existing journal is
    # state to recover, never to bulldoze.
    core.open(resume=True, requeue_failed=False)
    service = MeasurementService(core, socket_path=args.socket)
    try:
        service.serve()
    finally:
        core.close()
    return EXIT_DRAINED if core.drained and any(
        r.status not in (DONE, FAILED, CANCELLED) for r in core.records.values()
    ) else 0


def cmd_submit(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sweep.py submit", description="submit sweep jobs to the daemon",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    add_service_args(parser)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    parser.add_argument("--machine", default="raptor-lake-i7-13700")
    parser.add_argument("--n", type=int, nargs="*", help="HPL problem sizes")
    parser.add_argument("--variants", nargs="*", help="HPL variants")
    parser.add_argument("--nb", type=int, default=128)
    parser.add_argument("--slice-s", type=float, default=0.05)
    parser.add_argument("--chaos-seed", type=int, default=None)
    parser.add_argument("--flaky", action="store_true")
    parser.add_argument("--wait", action="store_true",
                        help="poll until every submitted run settles")
    args = parser.parse_args(argv)

    client = make_client(args)
    results = client.submit(build_runs(args))
    for verdict in results:
        line = f"{verdict['run_id']:28s} {verdict['disposition']:10s} {verdict['status']}"
        if verdict.get("reason"):
            line += f"  ({verdict['reason']})"
        print(line)
    rejected = [v for v in results if v["disposition"] == "rejected"]
    if rejected:
        print(f"[sweep] {len(rejected)} spec(s) rejected; resubmit later")
    if args.wait:
        run_ids = [
            v["run_id"] for v in results if v["disposition"] != "rejected"
        ]
        jobs = client.wait(run_ids)
        failed = [j for j in jobs if j["status"] == FAILED]
        for job in failed:
            err = (job.get("error") or {})
            print(f"[sweep] {job['run_id']} failed: "
                  f"{err.get('type')}: {err.get('message')}")
        return 1 if failed else (1 if rejected else 0)
    return 1 if rejected else 0


def cmd_watch(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sweep.py watch", description="follow one run's journal events",
    )
    add_service_args(parser)
    parser.add_argument("run_id")
    args = parser.parse_args(argv)
    client = make_client(args)
    for event in client.stream(args.run_id):
        print(json.dumps(event, sort_keys=True))
    return 0


def cmd_status(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sweep.py status", description="print daemon status",
    )
    add_service_args(parser)
    args = parser.parse_args(argv)
    print(json.dumps(make_client(args).status(), indent=2, sort_keys=True))
    return 0


def cmd_shutdown(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sweep.py shutdown", description="drain the daemon and exit it",
    )
    add_service_args(parser)
    args = parser.parse_args(argv)
    make_client(args).shutdown()
    print("[sweep] shutdown requested (daemon drains in-flight runs first)")
    return 0


# -- one-shot mode ------------------------------------------------------------


def run_one_shot(argv) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--out", default="runs/sweep", help="output directory")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing journal")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the admission plan and touch nothing")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    parser.add_argument("--machine", default="raptor-lake-i7-13700")
    parser.add_argument("--n", type=int, nargs="*", help="HPL problem sizes")
    parser.add_argument("--variants", nargs="*", help="HPL variants")
    parser.add_argument("--nb", type=int, default=128, help="HPL block size")
    parser.add_argument("--slice-s", type=float, default=0.05,
                        help="sim seconds per worker slice (checkpoint cadence)")
    parser.add_argument("--checkpoint-every-s", type=float, default=0.1,
                        help="sim seconds between checkpoints")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--backoff-s", type=float, default=0.5,
                        help="base retry backoff (doubles per attempt)")
    parser.add_argument("--jitter-seed", type=int, default=None,
                        help="seed for backoff jitter (omit: no jitter)")
    parser.add_argument("--timeout-s", type=float, default=300.0,
                        help="wall-clock kill timeout per worker")
    parser.add_argument("--stuck-after-s", type=float, default=30.0,
                        help="kill+migrate a worker whose simulated time "
                             "stops advancing for this many wall seconds")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size (default: CPU-derived)")
    parser.add_argument("--cache-dir", default=None,
                        help="deterministic result cache directory "
                             "(identical resubmitted specs launch no workers)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="deterministically inject first-attempt "
                             "crashes/stalls into the sweep (testing)")
    parser.add_argument("--flaky", action="store_true",
                        help="add a deterministic self-crashing selftest run")
    args = parser.parse_args(argv)

    runs = build_runs(args)
    if args.dry_run:
        return dry_run_plan(args, runs)

    supervisor = Supervisor(
        args.out,
        max_attempts=args.max_attempts,
        backoff_s=args.backoff_s,
        wall_timeout_s=args.timeout_s,
        checkpoint_every_s=args.checkpoint_every_s,
        workers=args.workers,
        stuck_after_s=args.stuck_after_s,
        jitter_seed=args.jitter_seed,
        cache_dir=args.cache_dir,
    )

    def on_sigterm(signum, frame):
        # Async-signal-safe only: one os.write plus the flag-setting
        # drain request (print() allocates and can reenter stdout's
        # buffered writer mid-flush).
        supervisor.request_drain()
        os.write(
            2,
            b"[sweep] SIGTERM: draining (checkpoint in-flight, keep journal)\n",
        )

    signal.signal(signal.SIGTERM, on_sigterm)
    manifest = supervisor.run(runs, resume=args.resume)

    print()
    print(f"{'run':28s} {'status':8s} {'att':>3s} {'gflops':>9s} {'energy J':>9s}")
    failed = pending = 0
    for rid, rec in sorted(manifest.runs.items()):
        gflops = energy = ""
        if rec.status == DONE and rec.result_path and os.path.exists(rec.result_path):
            with open(rec.result_path) as fh:
                result = json.load(fh)
            gflops = f"{result.get('gflops', 0.0):9.2f}"
            energy = f"{result.get('energy_j', 0.0):9.1f}"
        elif rec.status == FAILED:
            failed += 1
        else:
            pending += 1
        print(f"{rid:28s} {rec.status:8s} {rec.attempts:3d} {gflops:>9s} {energy:>9s}")
    print(f"\nmanifest: {manifest.path}")
    print(f"journal:  {supervisor.journal_path}")
    print_metrics(supervisor)
    if failed:
        return 1
    if supervisor.drained and pending:
        print(f"[sweep] drained with {pending} run(s) pending; "
              f"rerun with --resume to finish")
        return EXIT_DRAINED
    return 1 if pending else 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    try:
        if argv and argv[0] in SUBCOMMANDS:
            handler = {
                "serve": cmd_serve,
                "submit": cmd_submit,
                "watch": cmd_watch,
                "status": cmd_status,
                "shutdown": cmd_shutdown,
            }[argv[0]]
            return handler(argv[1:])
        return run_one_shot(argv)
    except JournalError as exc:
        # A journal this code refuses to trust: nothing was modified.
        # Distinct exit code, no traceback — the operator decides
        # whether to restore journal.jsonl / its .bak or start fresh.
        print(f"[sweep] journal error: {exc}", file=sys.stderr)
        return EXIT_JOURNAL
    except ServiceError as exc:
        print(f"[sweep] service error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
