#!/usr/bin/env python3
"""Run an HPL experiment sweep under the crash-isolated supervisor.

Each sweep point runs in its own subprocess worker with periodic
checkpointing; failures are retried with backoff (transient) or reported
(permanent), and everything is recorded in ``<out>/manifest.json``.  A
killed sweep picks up where it stopped::

    python tools/sweep.py --out runs/sweep1
    # ... SIGKILL at any point ...
    python tools/sweep.py --out runs/sweep1 --resume

``--resume`` skips runs already marked done and restarts the rest from
their latest checkpoint; the results are bit-identical to a sweep that
was never interrupted (see ``tools/resume_equivalence.py``, which CI
runs to enforce exactly that).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.supervisor import DONE, RunSpec, Supervisor  # noqa: E402

#: Sweep presets: problem sizes kept small enough to iterate on quickly.
PRESETS = {
    "quick": {"n_values": [1000, 2000], "variants": ["openblas"]},
    "paper": {"n_values": [2000, 4000, 8000], "variants": ["openblas", "blis"]},
}


def build_runs(args: argparse.Namespace) -> list[RunSpec]:
    preset = PRESETS[args.preset]
    n_values = args.n or preset["n_values"]
    variants = args.variants or preset["variants"]
    runs = []
    for variant in variants:
        for n in n_values:
            params = {
                "machine": args.machine,
                "n": n,
                "nb": args.nb,
                "variant": variant,
                "slice_s": args.slice_s,
            }
            runs.append(RunSpec(f"hpl-{variant}-n{n}", "hpl", params))
    if args.flaky:
        # A deterministic self-crashing run: dies with SIGKILL mid-run on
        # attempt 1, resumes from its checkpoint on attempt 2.  For
        # exercising the crash-isolation machinery end to end.
        runs.append(
            RunSpec(
                "flaky-selftest",
                "flaky-hpl",
                {
                    "machine": args.machine,
                    # The longest point of the sweep, so the run is still
                    # in flight (with a checkpoint down) at crash_at_s.
                    "n": max(n_values),
                    "nb": args.nb,
                    "variant": variants[0],
                    "slice_s": args.slice_s,
                    "crash_at_s": 0.08,
                    "crash_on_attempts": [1],
                },
            )
        )
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--out", default="runs/sweep", help="output directory")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing manifest")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    parser.add_argument("--machine", default="raptor-lake-i7-13700")
    parser.add_argument("--n", type=int, nargs="*", help="HPL problem sizes")
    parser.add_argument("--variants", nargs="*", help="HPL variants")
    parser.add_argument("--nb", type=int, default=128, help="HPL block size")
    parser.add_argument("--slice-s", type=float, default=0.05,
                        help="sim seconds per worker slice (checkpoint cadence)")
    parser.add_argument("--checkpoint-every-s", type=float, default=0.1,
                        help="sim seconds between checkpoints")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--backoff-s", type=float, default=0.5,
                        help="base retry backoff (doubles per attempt)")
    parser.add_argument("--timeout-s", type=float, default=300.0,
                        help="wall-clock kill timeout per worker")
    parser.add_argument("--flaky", action="store_true",
                        help="add a deterministic self-crashing selftest run")
    args = parser.parse_args(argv)

    supervisor = Supervisor(
        args.out,
        max_attempts=args.max_attempts,
        backoff_s=args.backoff_s,
        wall_timeout_s=args.timeout_s,
        checkpoint_every_s=args.checkpoint_every_s,
    )
    manifest = supervisor.run(build_runs(args), resume=args.resume)

    print()
    print(f"{'run':28s} {'status':8s} {'att':>3s} {'gflops':>9s} {'energy J':>9s}")
    failed = 0
    for rid, rec in sorted(manifest.runs.items()):
        gflops = energy = ""
        if rec.status == DONE and rec.result_path and os.path.exists(rec.result_path):
            with open(rec.result_path) as fh:
                result = json.load(fh)
            gflops = f"{result.get('gflops', 0.0):9.2f}"
            energy = f"{result.get('energy_j', 0.0):9.1f}"
        else:
            failed += 1
        print(f"{rid:28s} {rec.status:8s} {rec.attempts:3d} {gflops:>9s} {energy:>9s}")
    print(f"\nmanifest: {manifest.path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
