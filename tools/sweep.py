#!/usr/bin/env python3
"""Run an HPL experiment sweep under the fault-tolerant measurement service.

Sweep points execute on a pool of N crash-isolated subprocess workers
(``--workers``, default CPU-derived) with periodic checkpointing and
heartbeats; failures are retried with deterministic backoff (transient)
or reported (permanent), wedged workers are killed and migrated, and
every transition is journaled to ``<out>/journal.jsonl`` before the
supervisor acts on it.  A killed sweep picks up where it stopped::

    python tools/sweep.py --out runs/sweep1
    # ... SIGKILL at any point (workers, supervisor, or both) ...
    python tools/sweep.py --out runs/sweep1 --resume

``--resume`` replays the journal, skips runs already done, and restarts
the rest from their latest checkpoint; the results are bit-identical to
a sweep that was never interrupted (``tools/resume_equivalence.py`` is
the CI gate that enforces exactly that, including a ``--soak`` mode
that SIGKILLs a worker *and* the supervisor mid-fleet).

SIGTERM drains instead of dying: in-flight workers checkpoint and exit,
the rest stay pending in the journal, and the process exits with code 3
so callers know a ``--resume`` will finish the job.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.supervisor import DONE, FAILED, RunSpec, Supervisor  # noqa: E402

#: Exit code when the sweep drained on SIGTERM (resume to continue).
EXIT_DRAINED = 3

#: Sweep presets: problem sizes kept small enough to iterate on quickly.
PRESETS = {
    "quick": {"n_values": [1000, 2000], "variants": ["openblas"]},
    "paper": {"n_values": [2000, 4000, 8000], "variants": ["openblas", "intel"]},
    # 16 jobs sized for fleet/soak testing: big enough that a pool shows
    # real overlap, small enough that CI chews through them in seconds.
    "fleet": {
        "n_values": [800, 900, 1000, 1100, 1200, 1300, 1400, 1500],
        "variants": ["openblas", "intel"],
    },
}


def build_runs(args: argparse.Namespace) -> list[RunSpec]:
    preset = PRESETS[args.preset]
    n_values = args.n or preset["n_values"]
    variants = args.variants or preset["variants"]
    runs = []
    for variant in variants:
        for n in n_values:
            params = {
                "machine": args.machine,
                "n": n,
                "nb": args.nb,
                "variant": variant,
                "slice_s": args.slice_s,
            }
            runs.append(RunSpec(f"hpl-{variant}-n{n}", "hpl", params))
    if args.flaky:
        # A deterministic self-crashing run: dies with SIGKILL mid-run on
        # attempt 1, resumes from its checkpoint on attempt 2.  For
        # exercising the crash-isolation machinery end to end.
        runs.append(
            RunSpec(
                "flaky-selftest",
                "flaky-hpl",
                {
                    "machine": args.machine,
                    # The longest point of the sweep, so the run is still
                    # in flight (with a checkpoint down) at crash_at_s.
                    "n": max(n_values),
                    "nb": args.nb,
                    "variant": variants[0],
                    "slice_s": args.slice_s,
                    "crash_at_s": 0.08,
                    "crash_on_attempts": [1],
                },
            )
        )
    if args.chaos_seed is not None:
        inject_chaos(runs, args.chaos_seed)
    return runs


def inject_chaos(runs: list[RunSpec], seed: int) -> None:
    """Deterministically seed some runs with first-attempt faults.

    Roughly a fifth of the sweep self-crashes (SIGKILL mid-run) and a
    tenth wedges (heartbeats with frozen sim time — the stuck/migration
    path), always on attempt 1 only.  The fault parameters change how a
    run *executes*, never what it computes, so a chaos sweep must still
    end byte-identical to a calm one — that is the property the chaos
    fleet tests assert.
    """
    rng = random.Random(f"chaos:{seed}")
    injected = []
    for spec in runs:
        roll = rng.random()
        if roll < 0.2:
            spec.params.update(crash_at_s=0.06, crash_on_attempts=[1])
            injected.append(f"{spec.run_id}:crash")
        elif roll < 0.3:
            spec.params.update(stall_at_s=0.06, stall_on_attempts=[1])
            injected.append(f"{spec.run_id}:stall")
    print(f"[sweep] chaos seed {seed}: {', '.join(injected) or 'no faults drawn'}")


def print_metrics(supervisor: Supervisor) -> None:
    counters = supervisor.metrics.as_dict()["counters"]
    keys = (
        "fleet.launch",
        "fleet.done",
        "fleet.retry",
        "fleet.migration",
        "fleet.preempt",
        "fleet.cache_hit",
        "fleet.failed",
    )
    parts = [f"{k.split('.', 1)[1]}={int(counters[k])}" for k in keys if k in counters]
    kills = [
        f"{k.split('|', 1)[1]}_kills={int(v)}"
        for k, v in counters.items()
        if k.startswith("fleet.liveness_kill|")
    ]
    print(f"[sweep] fleet metrics: {' '.join(parts + kills) or 'none'}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--out", default="runs/sweep", help="output directory")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing journal")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="quick")
    parser.add_argument("--machine", default="raptor-lake-i7-13700")
    parser.add_argument("--n", type=int, nargs="*", help="HPL problem sizes")
    parser.add_argument("--variants", nargs="*", help="HPL variants")
    parser.add_argument("--nb", type=int, default=128, help="HPL block size")
    parser.add_argument("--slice-s", type=float, default=0.05,
                        help="sim seconds per worker slice (checkpoint cadence)")
    parser.add_argument("--checkpoint-every-s", type=float, default=0.1,
                        help="sim seconds between checkpoints")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--backoff-s", type=float, default=0.5,
                        help="base retry backoff (doubles per attempt)")
    parser.add_argument("--jitter-seed", type=int, default=None,
                        help="seed for backoff jitter (omit: no jitter)")
    parser.add_argument("--timeout-s", type=float, default=300.0,
                        help="wall-clock kill timeout per worker")
    parser.add_argument("--stuck-after-s", type=float, default=30.0,
                        help="kill+migrate a worker whose simulated time "
                             "stops advancing for this many wall seconds")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size (default: CPU-derived)")
    parser.add_argument("--cache-dir", default=None,
                        help="deterministic result cache directory "
                             "(identical resubmitted specs launch no workers)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="deterministically inject first-attempt "
                             "crashes/stalls into the sweep (testing)")
    parser.add_argument("--flaky", action="store_true",
                        help="add a deterministic self-crashing selftest run")
    args = parser.parse_args(argv)

    supervisor = Supervisor(
        args.out,
        max_attempts=args.max_attempts,
        backoff_s=args.backoff_s,
        wall_timeout_s=args.timeout_s,
        checkpoint_every_s=args.checkpoint_every_s,
        workers=args.workers,
        stuck_after_s=args.stuck_after_s,
        jitter_seed=args.jitter_seed,
        cache_dir=args.cache_dir,
    )

    def on_sigterm(signum, frame):
        print("[sweep] SIGTERM: draining (checkpoint in-flight, keep journal)")
        supervisor.request_drain()

    signal.signal(signal.SIGTERM, on_sigterm)
    manifest = supervisor.run(build_runs(args), resume=args.resume)

    print()
    print(f"{'run':28s} {'status':8s} {'att':>3s} {'gflops':>9s} {'energy J':>9s}")
    failed = pending = 0
    for rid, rec in sorted(manifest.runs.items()):
        gflops = energy = ""
        if rec.status == DONE and rec.result_path and os.path.exists(rec.result_path):
            with open(rec.result_path) as fh:
                result = json.load(fh)
            gflops = f"{result.get('gflops', 0.0):9.2f}"
            energy = f"{result.get('energy_j', 0.0):9.1f}"
        elif rec.status == FAILED:
            failed += 1
        else:
            pending += 1
        print(f"{rid:28s} {rec.status:8s} {rec.attempts:3d} {gflops:>9s} {energy:>9s}")
    print(f"\nmanifest: {manifest.path}")
    print(f"journal:  {supervisor.journal_path}")
    print_metrics(supervisor)
    if failed:
        return 1
    if supervisor.drained and pending:
        print(f"[sweep] drained with {pending} run(s) pending; "
              f"rerun with --resume to finish")
        return EXIT_DRAINED
    return 1 if pending else 0


if __name__ == "__main__":
    sys.exit(main())
