#!/usr/bin/env python3
"""CI gate: a SIGKILLed-and-resumed sweep equals an uninterrupted one.

Procedure:

1. run a small sweep start to finish (the reference);
2. run the identical sweep again, SIGKILL the whole supervisor process
   group once the manifest shows partial progress (some runs done, some
   not — i.e. mid-sweep, workers possibly mid-run);
3. resume it with ``--resume``;
4. compare every ``result.json`` byte for byte against the reference —
   including each run's final ``state_digest``, so "equal" means the
   restored simulations ended in bit-identical states, not just similar
   headline numbers.

Exits 0 on equivalence, 1 on any difference or failed run.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time

TOOLS = os.path.dirname(os.path.abspath(__file__))
SWEEP = os.path.join(TOOLS, "sweep.py")

SWEEP_ARGS = [
    "--preset", "quick",
    "--slice-s", "0.02",
    "--checkpoint-every-s", "0.04",
    "--backoff-s", "0",
]


def run_sweep(out_dir: str, resume: bool = False) -> None:
    cmd = [sys.executable, SWEEP, "--out", out_dir, *SWEEP_ARGS]
    if resume:
        cmd.append("--resume")
    subprocess.run(cmd, check=True)


def run_sweep_and_kill(out_dir: str, max_wait_s: float = 600.0) -> None:
    """Start the sweep in its own process group; SIGKILL it mid-sweep."""
    cmd = [sys.executable, SWEEP, "--out", out_dir, *SWEEP_ARGS]
    proc = subprocess.Popen(cmd, start_new_session=True)
    manifest_path = os.path.join(out_dir, "manifest.json")
    deadline = time.monotonic() + max_wait_s
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise SystemExit(
                    "sweep finished before it could be killed; "
                    "shrink --slice-s or grow the sweep"
                )
            counts = manifest_counts(manifest_path)
            done = counts.get("done", 0)
            total = sum(counts.values())
            # Mid-sweep: at least one run completed, at least one not —
            # and the in-flight run has checkpointed, so the resume path
            # being exercised is restore-from-checkpoint, not restart.
            if total and 0 < done < total and inflight_checkpoint(out_dir):
                break
            time.sleep(0.02)
        else:
            raise SystemExit("sweep never reached a mid-sweep state")
    finally:
        if proc.poll() is None:
            # Kill supervisor AND any in-flight worker: the whole group.
            os.killpg(proc.pid, signal.SIGKILL)
    proc.wait()
    print(f"[equiv] killed sweep mid-flight (manifest: {manifest_counts(manifest_path)})")


def inflight_checkpoint(out_dir: str) -> bool:
    """True if some not-yet-done run has a checkpoint on disk."""
    manifest_path = os.path.join(out_dir, "manifest.json")
    try:
        with open(manifest_path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return False
    for rid, rec in data.get("runs", {}).items():
        if rec["status"] != "done" and os.path.exists(
            os.path.join(out_dir, rid, "checkpoint.snap")
        ):
            return True
    return False


def manifest_counts(path: str) -> dict:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    counts: dict[str, int] = {}
    for rec in data.get("runs", {}).values():
        counts[rec["status"]] = counts.get(rec["status"], 0) + 1
    return counts


def collect_results(out_dir: str) -> dict[str, dict]:
    with open(os.path.join(out_dir, "manifest.json")) as fh:
        manifest = json.load(fh)
    results = {}
    for rid, rec in manifest["runs"].items():
        if rec["status"] != "done":
            raise SystemExit(f"run {rid} in {out_dir} is {rec['status']}, not done")
        with open(os.path.join(out_dir, rid, "result.json")) as fh:
            results[rid] = json.load(fh)
    return results


def main() -> int:
    base = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else "/tmp/resume-equiv")
    ref_dir = os.path.join(base, "reference")
    killed_dir = os.path.join(base, "killed")
    shutil.rmtree(base, ignore_errors=True)
    os.makedirs(base)

    print("[equiv] phase 1: reference sweep (uninterrupted)")
    run_sweep(ref_dir)

    print("[equiv] phase 2: same sweep, SIGKILLed mid-flight")
    run_sweep_and_kill(killed_dir)

    print("[equiv] phase 3: resume the killed sweep")
    run_sweep(killed_dir, resume=True)

    print("[equiv] phase 4: compare results")
    ref = collect_results(ref_dir)
    res = collect_results(killed_dir)
    if set(ref) != set(res):
        print(f"[equiv] FAIL: run sets differ: {sorted(set(ref) ^ set(res))}")
        return 1
    bad = 0
    for rid in sorted(ref):
        if ref[rid] != res[rid]:
            bad += 1
            diffs = [k for k in ref[rid] if ref[rid][k] != res[rid].get(k)]
            print(f"[equiv] FAIL: {rid} differs in fields: {diffs}")
        else:
            print(f"[equiv] ok: {rid} identical (digest {ref[rid]['state_digest'][:12]}...)")
    if bad:
        return 1
    print(f"[equiv] PASS: {len(ref)} run(s) bit-identical after kill+resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
