#!/usr/bin/env python3
"""CI gate: a SIGKILLed-and-resumed sweep equals an uninterrupted one.

Default mode:

1. run a small sweep start to finish (the reference);
2. run the identical sweep again, SIGKILL the whole supervisor process
   group once the journal shows partial progress (some runs done, some
   not — i.e. mid-sweep, workers possibly mid-run);
3. resume it with ``--resume``;
4. compare every ``result.json`` byte for byte against the reference —
   including each run's final ``state_digest``, so "equal" means the
   restored simulations ended in bit-identical states, not just similar
   headline numbers.

``--soak`` escalates to the fleet: a 16-job sweep on a worker pool with
deterministic chaos injection (crashes + stalls → migrations), where a
seeded-random *worker* is SIGKILLed mid-fleet, then the *supervisor*
itself is SIGKILLed, orphaned workers are cleaned up, and the resumed
sweep must still end byte-identical to the calm reference.

``--daemon`` runs the same chaos fleet through the long-running
measurement service instead of the one-shot path: jobs are submitted
over the unix socket, a seeded-random worker is SIGKILLed, then the
*daemon* is SIGKILLed mid-fleet — deliberately leaving its workers
orphaned, because reaping them is the rebooted daemon's own job.  The
daemon is restarted, the identical batch is resubmitted (admission is
idempotent — every verdict must be a duplicate or requeue, never a
fresh add), drained, and the results must be byte-identical to the calm
one-shot reference.

Exits 0 on equivalence, 1 on any difference or failed run.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time

TOOLS = os.path.dirname(os.path.abspath(__file__))
SWEEP = os.path.join(TOOLS, "sweep.py")

SWEEP_ARGS = [
    "--preset", "quick",
    "--slice-s", "0.02",
    "--checkpoint-every-s", "0.04",
    "--backoff-s", "0",
]

#: Fleet/soak sweep: 16 jobs on a worker pool with deterministic chaos
#: (seed 8 draws two self-crashes and two stalls → migrations).
SOAK_ARGS = [
    "--preset", "fleet",
    "--slice-s", "0.02",
    "--checkpoint-every-s", "0.04",
    "--backoff-s", "0",
    "--workers", "4",
    "--stuck-after-s", "0.8",
]
SOAK_CHAOS_ARGS = [*SOAK_ARGS, "--chaos-seed", "8"]

#: Daemon soak: the same fleet sweep split across the service CLI —
#: pool tuning goes to ``serve``, the job batch goes to ``submit``.
DAEMON_SERVE_ARGS = [
    "--workers", "4",
    "--stuck-after-s", "0.8",
    "--checkpoint-every-s", "0.04",
    "--backoff-s", "0",
]
DAEMON_SUBMIT_ARGS = [
    "--preset", "fleet",
    "--slice-s", "0.02",
    "--chaos-seed", "8",
]


# -- journal reading ---------------------------------------------------------
# The journal is the live record (the manifest is only materialized at
# start/exit), so mid-flight progress watching reads journal.jsonl.
# Tolerant by design: a torn tail is expected while the writer is alive.


def journal_events(out_dir: str) -> list[dict]:
    events = []
    try:
        with open(os.path.join(out_dir, "journal.jsonl"), "rb") as fh:
            for line in fh.read().split(b"\n"):
                if not line.strip():
                    continue
                try:
                    events.append(json.loads(line))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break  # torn tail: the supervisor is mid-append
    except OSError:
        pass
    return events


def journal_progress(out_dir: str) -> dict:
    """Fold the journal into {"total", "done", "running": {run_id: pid}}."""
    total: set = set()
    done: set = set()
    running: dict[str, int] = {}
    for e in journal_events(out_dir):
        etype, rid = e.get("type"), e.get("run_id")
        if etype == "add":
            total.add(rid)
        elif etype == "launch":
            running[rid] = e.get("pid")
        elif etype == "done":
            done.add(rid)
            running.pop(rid, None)
        elif etype in ("exit", "failed", "preempted"):
            running.pop(rid, None)
    return {"total": len(total), "done": len(done), "running": running}


def inflight_checkpoint(out_dir: str) -> bool:
    """True if some not-yet-done run has a checkpoint on disk."""
    events = journal_events(out_dir)
    added = {e["run_id"] for e in events if e.get("type") == "add"}
    done = {e["run_id"] for e in events if e.get("type") == "done"}
    return any(
        os.path.exists(os.path.join(out_dir, rid, "checkpoint.snap"))
        for rid in added - done
    )


def kill_pid(pid: int, sig: int = signal.SIGKILL) -> bool:
    """Kill a process group (workers lead their own session), falling
    back to the single pid; True if something was signalled."""
    for fn in (os.killpg, os.kill):
        try:
            fn(pid, sig)
            return True
        except (ProcessLookupError, PermissionError, OSError):
            continue
    return False


def kill_orphan_workers(out_dir: str) -> int:
    """SIGKILL every worker the journal launched that is still alive.

    Workers run in their own sessions, so killing the supervisor's
    process group does NOT take them down — exactly the situation a real
    crashed host leaves behind.  The journal has every launched pid.
    """
    killed = 0
    for e in journal_events(out_dir):
        if e.get("type") == "launch" and e.get("pid"):
            if kill_pid(e["pid"]):
                killed += 1
    return killed


# -- sweep drivers -----------------------------------------------------------


def run_sweep(out_dir: str, sweep_args: list[str], resume: bool = False) -> None:
    cmd = [sys.executable, SWEEP, "--out", out_dir, *sweep_args]
    if resume:
        cmd.append("--resume")
    subprocess.run(cmd, check=True)


def _watch_until_mid_sweep(
    proc: subprocess.Popen,
    out_dir: str,
    kill_worker_seed: int | None,
    max_wait_s: float,
) -> None:
    """Block until the journal shows a kill-worthy mid-sweep state.

    With ``kill_worker_seed`` set, first SIGKILL one seeded-random
    in-flight worker (the soak's worker-death event), wait for the fleet
    to absorb it (a retry), and only then return.
    """
    deadline = time.monotonic() + max_wait_s
    worker_killed = False
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "sweep finished (or died) before it could be killed; "
                "shrink --slice-s or grow the sweep"
            )
        progress = journal_progress(out_dir)
        if (
            kill_worker_seed is not None
            and not worker_killed
            and progress["done"] >= 1
            and progress["running"]
        ):
            rid, pid = sorted(progress["running"].items())[
                random.Random(kill_worker_seed).randrange(
                    len(progress["running"])
                )
            ]
            if kill_pid(pid):
                worker_killed = True
                print(f"[equiv] soak: SIGKILLed worker {pid} ({rid})")
            continue
        # Mid-sweep: at least one run completed, at least one not —
        # and an in-flight run has checkpointed, so the resume path
        # being exercised is restore-from-checkpoint, not restart.
        mid = (
            progress["total"]
            and 0 < progress["done"] < progress["total"]
            and inflight_checkpoint(out_dir)
        )
        if mid and (kill_worker_seed is None or worker_killed):
            return
        time.sleep(0.02)
    raise SystemExit("sweep never reached a mid-sweep state")


def run_sweep_and_kill(
    out_dir: str,
    sweep_args: list[str],
    kill_worker_seed: int | None = None,
    max_wait_s: float = 600.0,
) -> None:
    """Start the sweep in its own process group and SIGKILL it mid-sweep."""
    cmd = [sys.executable, SWEEP, "--out", out_dir, *sweep_args]
    proc = subprocess.Popen(cmd, start_new_session=True)
    try:
        _watch_until_mid_sweep(proc, out_dir, kill_worker_seed, max_wait_s)
    finally:
        if proc.poll() is None:
            # Kill the supervisor's whole group...
            os.killpg(proc.pid, signal.SIGKILL)
    proc.wait()
    # ...and the workers it orphaned (they lead their own sessions).
    orphans = kill_orphan_workers(out_dir)
    progress = journal_progress(out_dir)
    print(
        f"[equiv] killed sweep mid-flight "
        f"(done {progress['done']}/{progress['total']}, "
        f"{orphans} orphan pid(s) swept)"
    )


# -- daemon drivers ----------------------------------------------------------


def start_daemon(out_dir: str, boot_wait_s: float = 60.0) -> subprocess.Popen:
    """Start ``sweep.py serve`` in its own group; wait for its socket."""
    proc = subprocess.Popen(
        [sys.executable, SWEEP, "serve", "--out", out_dir, *DAEMON_SERVE_ARGS],
        start_new_session=True,
    )
    sock = os.path.join(out_dir, "service.sock")
    deadline = time.monotonic() + boot_wait_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited {proc.returncode} during boot")
        if os.path.exists(sock):
            return proc
        time.sleep(0.05)
    raise SystemExit("daemon never bound its socket")


def run_daemon_and_kill(out_dir: str, kill_worker_seed: int, max_wait_s: float = 600.0) -> None:
    """Submit the chaos fleet to a daemon, SIGKILL a worker, then SIGKILL
    the daemon mid-fleet — leaving its surviving workers orphaned (the
    rebooted daemon must reap them itself)."""
    daemon = start_daemon(out_dir)
    try:
        subprocess.run(
            [sys.executable, SWEEP, "submit", "--out", out_dir,
             *DAEMON_SUBMIT_ARGS],
            check=True,
        )
        _watch_until_mid_sweep(daemon, out_dir, kill_worker_seed, max_wait_s)
    finally:
        if daemon.poll() is None:
            os.killpg(daemon.pid, signal.SIGKILL)
    daemon.wait()
    # Deliberately do NOT sweep orphans here: boot-time orphan reaping
    # is part of the daemon contract under test.
    orphans = 0
    for e in journal_events(out_dir):
        if e.get("type") == "launch" and e.get("pid"):
            try:
                os.kill(e["pid"], 0)
            except (ProcessLookupError, PermissionError, OSError):
                continue
            orphans += 1
    progress = journal_progress(out_dir)
    print(
        f"[equiv] SIGKILLed daemon mid-fleet "
        f"(done {progress['done']}/{progress['total']}, "
        f"{orphans} worker(s) left orphaned for the reboot to reap)"
    )


def finish_daemon(out_dir: str) -> None:
    """Reboot the daemon, resubmit the identical batch (idempotent),
    wait for completion, and drain it down cleanly."""
    daemon = start_daemon(out_dir)
    try:
        subprocess.run(
            [sys.executable, SWEEP, "submit", "--out", out_dir,
             *DAEMON_SUBMIT_ARGS, "--wait"],
            check=True,
        )
        subprocess.run(
            [sys.executable, SWEEP, "shutdown", "--out", out_dir],
            check=True,
        )
        code = daemon.wait(timeout=120)
        if code != 0:
            raise SystemExit(f"rebooted daemon exited {code}, expected 0")
    finally:
        if daemon.poll() is None:
            os.killpg(daemon.pid, signal.SIGKILL)
            daemon.wait()


# -- comparison --------------------------------------------------------------


def collect_results(out_dir: str) -> dict[str, dict]:
    with open(os.path.join(out_dir, "manifest.json")) as fh:
        manifest = json.load(fh)
    results = {}
    for rid, rec in manifest["runs"].items():
        if rec["status"] != "done":
            raise SystemExit(f"run {rid} in {out_dir} is {rec['status']}, not done")
        with open(os.path.join(out_dir, rid, "result.json")) as fh:
            results[rid] = json.load(fh)
    return results


def compare(ref_dir: str, res_dir: str) -> int:
    ref = collect_results(ref_dir)
    res = collect_results(res_dir)
    if set(ref) != set(res):
        print(f"[equiv] FAIL: run sets differ: {sorted(set(ref) ^ set(res))}")
        return 1
    bad = 0
    for rid in sorted(ref):
        if ref[rid] != res[rid]:
            bad += 1
            diffs = [k for k in ref[rid] if ref[rid][k] != res[rid].get(k)]
            print(f"[equiv] FAIL: {rid} differs in fields: {diffs}")
        else:
            print(f"[equiv] ok: {rid} identical (digest {ref[rid]['state_digest'][:12]}...)")
    if bad:
        return 1
    print(f"[equiv] PASS: {len(ref)} run(s) bit-identical after kill+resume")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", nargs="?", default="/tmp/resume-equiv",
                        help="scratch directory")
    parser.add_argument("--soak", action="store_true",
                        help="fleet soak: chaos sweep + worker SIGKILL "
                             "+ supervisor SIGKILL + resume")
    parser.add_argument("--daemon", action="store_true",
                        help="daemon soak: the chaos fleet through the "
                             "service socket, SIGKILL worker + daemon, "
                             "reboot, idempotent resubmit, drain")
    parser.add_argument("--worker-kill-seed", type=int, default=1,
                        help="seed picking which in-flight worker dies")
    args = parser.parse_args(argv)

    base = os.path.abspath(args.base)
    ref_dir = os.path.join(base, "reference")
    killed_dir = os.path.join(base, "killed")
    shutil.rmtree(base, ignore_errors=True)
    os.makedirs(base)

    if args.daemon:
        # The reference is the CALM ONE-SHOT fleet: the daemon path must
        # converge on exactly what the classic path produces.
        print("[equiv] daemon phase 1: calm reference fleet (one-shot)")
        run_sweep(ref_dir, SOAK_ARGS)
        print("[equiv] daemon phase 2: chaos fleet via the service, "
              "worker+daemon SIGKILL")
        run_daemon_and_kill(killed_dir, args.worker_kill_seed)
        print("[equiv] daemon phase 3: reboot, idempotent resubmit, drain")
        finish_daemon(killed_dir)
    elif args.soak:
        # The reference is CALM (no chaos): the chaos+kills sweep must
        # converge on what an undisturbed sequential fleet produces.
        print("[equiv] soak phase 1: calm reference fleet (uninterrupted)")
        run_sweep(ref_dir, SOAK_ARGS)
        print("[equiv] soak phase 2: chaos fleet, worker+supervisor SIGKILL")
        run_sweep_and_kill(
            killed_dir, SOAK_CHAOS_ARGS, kill_worker_seed=args.worker_kill_seed
        )
        print("[equiv] soak phase 3: resume the killed fleet")
        run_sweep(killed_dir, SOAK_CHAOS_ARGS, resume=True)
    else:
        print("[equiv] phase 1: reference sweep (uninterrupted)")
        run_sweep(ref_dir, SWEEP_ARGS)
        print("[equiv] phase 2: same sweep, SIGKILLed mid-flight")
        run_sweep_and_kill(killed_dir, SWEEP_ARGS)
        print("[equiv] phase 3: resume the killed sweep")
        run_sweep(killed_dir, SWEEP_ARGS, resume=True)

    print("[equiv] final phase: compare results")
    return compare(ref_dir, killed_dir)


if __name__ == "__main__":
    sys.exit(main())
