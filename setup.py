"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
``pip install -e .`` (PEP 660) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` / ``pip install -e . --no-build-isolation``
fall back to the legacy editable install path.
"""

from setuptools import setup

setup()
