#!/usr/bin/env python3
"""Overflow-based profiling with PAPI on a hybrid CPU.

``PAPI_overflow`` delivers a callback every N counted events — the
sampling counterpart to calipering.  On a heterogeneous machine a
derived preset's overflow follows the thread across core types: each
backing PMU samples independently, so the profile shows *where* the
program's instructions actually retired.  Run::

    python examples/overflow_profiling.py
"""

from collections import Counter

from repro import Papi, System
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


def main() -> None:
    system = System(
        "raptor-lake-i7-13700",
        dt_s=1e-4,
        seed=12,
        migrate_jitter=0.08,
        rebalance_jitter=0.08,
    )
    papi = Papi(system, mode="hybrid")

    thread = system.machine.spawn(
        SimThread("workload", Program([ComputePhase(3e7, RATES)]))
    )
    es = papi.create_eventset()
    papi.attach(es, thread)
    papi.add_event(es, "PAPI_TOT_INS")

    samples_by_pmu: Counter = Counter()
    samples_by_cpu: Counter = Counter()

    def on_overflow(esid, sample):
        samples_by_pmu[sample.pmu] += 1
        samples_by_cpu[sample.cpu] += 1

    threshold = 200_000
    papi.overflow(es, "PAPI_TOT_INS", threshold, on_overflow)
    papi.start(es)
    system.machine.run_until_done([thread], max_s=10)
    (total,) = papi.stop(es)
    papi.destroy_eventset(es)

    n = sum(samples_by_pmu.values())
    print(f"{total:.0f} instructions retired; {n} overflow samples "
          f"(every {threshold:,})")
    print("\nProfile by core-type PMU:")
    for pmu, count in samples_by_pmu.most_common():
        print(f"  {count / n * 100:6.2f}%  {pmu}")
    print("\nTop CPUs:")
    for cpu, count in samples_by_cpu.most_common(5):
        ctype = system.topology.core(cpu).ctype.name
        print(f"  cpu{cpu:<3d} ({ctype:7s}) {count / n * 100:6.2f}%")
    print(f"\nThread migrated {thread.nr_migrations} times; the sample shares"
          "\ntrack the instruction split without any calipering.")


if __name__ == "__main__":
    main()
