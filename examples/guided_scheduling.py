#!/usr/bin/env python3
"""Counter-guided core selection: what heterogeneous PAPI enables.

The paper's related work (Stepanovic et al.) observes that "it is
usually optimal to relegate jobs with a high LLC miss rate to the
E-cores" — which requires exactly the tooling the paper builds:
per-core-type LLC counters readable from one EventSet.

This example profiles a batch of mixed jobs with hybrid-PAPI derived
presets (PAPI_L3_TCA / PAPI_L3_TCM), then schedules the batch three
ways on the simulated Raptor Lake and compares makespan and energy.
Run::

    python examples/guided_scheduling.py
"""

from repro.workloads.guided import render, run_guided_study


def main() -> None:
    print("Profiling jobs with hybrid-PAPI EventSets, then running the batch")
    print("under three placement policies (oversubscribed 8P+8E machine)...\n")
    result = run_guided_study(per_profile=8)
    print(render(result))
    print(
        "\nThe guided policy — memory-bound jobs to E-cores, compute-bound to"
        "\nP-cores — wins on both time and energy, and it is only possible"
        "\nbecause the hybrid EventSet can measure LLC behaviour regardless of"
        "\nwhich core type a job samples on."
    )


if __name__ == "__main__":
    main()
