#!/usr/bin/env python3
"""Core-type detection survey (§IV-B): every strategy on every machine.

Shows why the paper calls detection "one major problem": each mechanism
works on some machines and fails on others — /proc/cpuinfo cannot tell
Intel P from E cores, cpuid does not exist on ARM, cpu_capacity is
arm64-only, PMU names change with boot firmware, and the proposed
/sys/devices/system/cpu/types interface was never merged.  Run::

    python examples/core_detection.py
"""

from repro import System
from repro.hw.machines import orangepi_800
from repro.kernel.sched.affinity import format_cpu_list
from repro.papi import detect_core_types


def survey(title: str, system: System) -> None:
    print(f"\n=== {title} " + "=" * max(1, 60 - len(title)))
    report = detect_core_types(system)
    for r in report.results:
        if not r.applicable:
            print(f"  {r.strategy:20s} n/a        ({r.detail})")
            continue
        classes = ", ".join(
            f"{name}=[{format_cpu_list(cpus)}]" for name, cpus in sorted(r.classes.items())
        )
        verdict = "OK " if r.n_classes == len(system.topology.core_types) else "MISLEADING"
        print(f"  {r.strategy:20s} {verdict:10s} {classes}")
    print(
        f"  -> consensus: {len(report.consensus)} core type(s); "
        f"machine truly has {len(system.topology.core_types)}"
    )


def main() -> None:
    survey("Intel Raptor Lake (P+E)", System("raptor-lake-i7-13700"))
    survey("OrangePi 800, devicetree firmware", System("orangepi-800"))
    survey("OrangePi 800, ACPI firmware (renamed PMUs)", System(orangepi_800(firmware="acpi")))
    survey("Three-tier ARM DynamIQ", System("dynamiq-three-tier"))
    survey("Homogeneous Xeon (control)", System("xeon-homogeneous"))
    survey(
        "Raptor Lake with the proposed (unmerged) cpu/types interface",
        System("raptor-lake-i7-13700", expose_cpu_types=True),
    )


if __name__ == "__main__":
    main()
