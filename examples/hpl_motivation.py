#!/usr/bin/env python3
"""The paper's motivation study: OpenBLAS HPL vs Intel HPL on Raptor Lake.

Reproduces Tables II/III and the Figure 1/2 series at a reduced problem
size (pass ``--full`` for the paper's exact N = 57024; much slower).
Run::

    python examples/hpl_motivation.py [--full]
"""

import sys

from repro.experiments import fig1_frequencies, fig2_power, table2_hpl, table3_counters


def main() -> None:
    full = "--full" in sys.argv

    print("Running Table II (six HPL cells; this takes a little while)...")
    t2 = table2_hpl.run_table2(full_scale=full)
    print("\nTable II — Benchmark performance comparison (Gflop/s)")
    print(table2_hpl.render(t2))
    holds = table2_hpl.shape_holds(t2)
    print("shape claims:", ", ".join(f"{k}={v}" for k, v in holds.items()))

    print("\nRunning Table III (counter measurements via perf)...")
    t3 = table3_counters.run_table3(full_scale=full)
    print("\nTable III — Hardware counter measurements, all-core runs")
    print(table3_counters.render(t3))

    print("\nRunning Figure 1 (frequency traces)...")
    f1 = fig1_frequencies.run_fig1(full_scale=full)
    print(fig1_frequencies.render(f1))

    print("\nRunning Figure 2 (power and temperature traces)...")
    f2 = fig2_power.run_fig2(full_scale=full)
    print(fig2_power.render(f2))

    print(
        "\nTakeaway: software built for homogeneous cores (OpenBLAS HPL) loses"
        "\nperformance when E-cores join; the hybrid-aware build gains "
        f"{t2.change_pct('P and E'):.0f}% instead."
    )


if __name__ == "__main__":
    main()
