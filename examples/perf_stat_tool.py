#!/usr/bin/env python3
"""perf-stat vs PAPI on a hybrid machine.

Demonstrates the comparison in §IV-A of the paper: the perf tool handles
heterogeneous CPUs by opening one event per core-type PMU and reporting
them all (aggregate whole-program counts), while PAPI additionally lets
you *caliper* a specific code region.  Also shows multiplexing with
enabled/running scaling.  Run::

    python examples/perf_stat_tool.py
"""

from repro import Papi, System
from repro.monitor import PerfStat
from repro.papi.highlevel import HighLevelApi
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

COMPUTE = constant_rates(PhaseRates(ipc=3.0, flops_per_instr=4.0))
MEMORY = constant_rates(
    PhaseRates(ipc=0.8, llc_refs_per_instr=0.05, llc_miss_rate=0.7)
)


def main() -> None:
    system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=7,
                    migrate_jitter=0.03, rebalance_jitter=0.03)

    # The application: a compute kernel sandwiched between memory phases.
    hl_holder: dict = {}
    items = [
        ComputePhase(4e6, MEMORY, label="load-data"),
        ControlOp(lambda th: hl_holder["hl"].region_begin("kernel")),
        ComputePhase(8e6, COMPUTE, label="kernel"),
        ControlOp(lambda th: hl_holder["hl"].region_end("kernel")),
        ComputePhase(4e6, MEMORY, label="store-data"),
    ]
    thread = system.machine.spawn(SimThread("app", Program(items)))

    # perf stat: whole-program counts, one line per core-type PMU.
    tool = PerfStat(system)
    tool.open_for_threads(
        ["INST_RETIRED", "LONGEST_LAT_CACHE:MISS"], [thread]
    )

    # PAPI: calipers just the kernel region.
    papi = Papi(system, mode="hybrid")
    hl_holder["hl"] = HighLevelApi(papi, thread, events=("PAPI_TOT_INS", "PAPI_TOT_CYC"))

    tool.start()
    system.machine.run_until_done([thread], max_s=10)
    result = tool.stop()
    tool.close()

    print("perf stat (whole program, per PMU):")
    print(result.render())
    total = result.total("INST_RETIRED")
    print(f"\n  total INST_RETIRED across PMUs: {total:.0f} (expected ~16M + overhead)")

    stats = hl_holder["hl"].regions["kernel"]
    ins = stats.as_dict()["PAPI_TOT_INS"]
    cyc = stats.as_dict()["PAPI_TOT_CYC"]
    print("\nPAPI calipered region 'kernel' (what perf cannot isolate):")
    print(f"  PAPI_TOT_INS = {ins:.0f}  (the 8M-instruction kernel only)")
    print(f"  PAPI_TOT_CYC = {cyc:.0f}  -> region IPC = {ins / cyc:.2f}")


if __name__ == "__main__":
    main()
