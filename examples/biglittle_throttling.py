#!/usr/bin/env python3
"""ARM big.LITTLE exploration: thermal throttling on the OrangePi 800.

Reproduces Figures 3 and 4: HPL on the two Cortex-A72 big cores heats
the passively-cooled SoC past its trip point within seconds; the four
Cortex-A53 LITTLE cores, far more efficient, end up finishing the same
problem *faster*, and adding the big cores to them barely helps.  Run::

    python examples/biglittle_throttling.py
"""

from repro.experiments import fig3_arm_throttle, fig4_arm_scaling


def main() -> None:
    print("Running Figure 3 (frequency scaling under thermal pressure)...")
    f3 = fig3_arm_throttle.run_fig3()
    print(fig3_arm_throttle.render(f3))
    print(
        f"\nThe big cluster starts at {f3.big_start_mhz['big x2']:.0f} MHz and is"
        f" throttled within {f3.time_to_throttle_s['big x2']:.0f} s"
        f" (trip point {f3.trip_c:.0f} C, passive cooling)."
    )

    print("\nRunning Figure 4 (HPL as more cores are added)...")
    f4 = fig4_arm_scaling.run_fig4()
    print(fig4_arm_scaling.render(f4))
    speedup = f4.wall_s["2 big"] / f4.wall_s["4 little"]
    bonus = f4.gflops["all 6"] / f4.gflops["4 little"] - 1.0
    print(
        f"\n4 LITTLE cores complete {speedup:.2f}x faster than 2 throttled big"
        f" cores; all six cores add only {bonus * 100:.0f}% over the LITTLEs —"
        "\nanalysis like this is why performance tools need to be"
        " heterogeneous-aware."
    )


if __name__ == "__main__":
    main()
