#!/usr/bin/env python3
"""Quickstart: measure a workload on a heterogeneous CPU with PAPI.

Boots a simulated Raptor Lake (8 P-cores + 8 E-cores), lets the PAPI
reproduction detect the core types, and calipers a small workload with a
hybrid EventSet holding one INST_RETIRED event per core-type PMU — the
paper's §IV-F scenario.  Run::

    python examples/quickstart.py
"""

from repro import Papi, System
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates


def main() -> None:
    # A simulated machine with background scheduler noise, so the thread
    # migrates between P- and E-cores mid-run.
    system = System(
        "raptor-lake-i7-13700",
        dt_s=2e-5,
        migrate_jitter=0.05,
        rebalance_jitter=0.05,
        seed=3,
    )
    papi = Papi(system, mode="hybrid")

    info = papi.get_hardware_info()
    print(f"Machine: {info.model_string}")
    print(f"  {info.cores} cores / {info.totalcpus} threads, heterogeneous={info.heterogeneous}")
    for cc in info.core_classes:
        print(
            f"  {cc.name:8s} x{cc.n_physical_cores}  "
            f"{cc.base_mhz / 1000:.1f}-{cc.max_mhz / 1000:.1f} GHz  "
            f"PMU={cc.pmu_name}"
        )

    # The measured program: 1M instructions, repeated 20 times, with
    # PAPI calls calipering each repetition (what perf cannot do).
    rates = constant_rates(PhaseRates(ipc=2.0))
    reps = 20
    results: list[list[float]] = []
    holder: dict = {}

    def setup(thread: SimThread) -> None:
        es = papi.create_eventset()
        papi.attach(es, thread)
        # The P-core/E-core mix is the point of this demo: the two raw
        # events together cover the thread wherever it is scheduled.
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY", caller=thread)  # repro-lint: disable=PAPI-PMU-MIX
        papi.add_event(es, "adl_grt::INST_RETIRED:ANY", caller=thread)
        papi.start(es, caller=thread)
        holder["es"] = es

    def measure(thread: SimThread) -> None:
        results.append(papi.read(holder["es"], caller=thread))
        papi.reset(holder["es"], caller=thread)

    items: list = [ControlOp(setup)]
    for _ in range(reps):
        items.append(ComputePhase(1_000_000, rates))
        items.append(ControlOp(measure))
    items.append(ControlOp(lambda th: papi.stop(holder["es"], caller=th)))

    thread = system.machine.spawn(SimThread("quickstart", Program(items)))
    system.machine.run_until_done([thread], max_s=10)

    avg_p = sum(r[0] for r in results) / len(results)
    avg_e = sum(r[1] for r in results) / len(results)
    print(f"\npapi_hybrid one-eventset over {reps} reps of 1M instructions:")
    print(f"  Average instructions p: {avg_p:.0f} e: {avg_e:.0f}")
    print(f"  Sum: {avg_p + avg_e:.0f} (~1M plus small PAPI call overhead)")
    print(f"  Thread migrated {thread.nr_migrations} times between cores")


if __name__ == "__main__":
    main()
