"""CPU hotplug: Linux semantics end to end.

sysfs control files, scheduler fallback when affinity masks go dark,
and perf-event parking with correct enabled/running accounting across
an offline → online round trip.
"""

from __future__ import annotations

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf import PerfEventAttr
from repro.kernel.perf.subsystem import PerfIoctl
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = constant_rates(PhaseRates(ipc=2.0))


def _system(dt_s=0.001):
    return System(MACHINE, dt_s=dt_s)


def _spawn(system, name, affinity=None, instr=1e12):
    return system.machine.spawn(
        SimThread(name, Program([ComputePhase(instr, RATES)]), affinity=affinity)
    )


class TestSysfsHotplugControl:
    def test_online_file_round_trip(self):
        system = _system()
        path = "/sys/devices/system/cpu/cpu17/online"
        assert system.sysfs.read(path) == "1"
        system.sysfs.write(path, "0")
        assert system.sysfs.read(path) == "0"
        assert 17 in system.topology.offline_cpus()
        assert "17" not in system.sysfs.read("/sys/devices/system/cpu/online")
        system.sysfs.write(path, "1")
        assert system.topology.offline_cpus() == []

    def test_cpu0_has_no_online_file(self):
        system = _system()
        assert not system.sysfs.exists("/sys/devices/system/cpu/cpu0/online")
        with pytest.raises(FileNotFoundError):
            system.sysfs.read("/sys/devices/system/cpu/cpu0/online")
        with pytest.raises(KernelError) as err:
            system.machine.offline_cpu(0)
        assert err.value.kernel_errno is Errno.EBUSY

    def test_bogus_online_value_is_einval(self):
        system = _system()
        with pytest.raises(KernelError) as err:
            system.sysfs.write("/sys/devices/system/cpu/cpu17/online", "2")
        assert err.value.kernel_errno is Errno.EINVAL

    def test_offline_is_idempotent(self):
        system = _system()
        system.machine.offline_cpu(17)
        system.machine.offline_cpu(17)
        system.machine.online_cpu(17)
        system.machine.online_cpu(17)
        assert system.topology.offline_cpus() == []


class TestSchedulerUnderHotplug:
    def test_affinity_disjoint_from_online_falls_back_to_cpuset(self):
        """All of a thread's allowed CPUs die: like Linux's
        ``select_fallback_rq`` cpuset fallback, it keeps running on any
        online CPU rather than starving."""
        system = _system()
        m = system.machine
        t = _spawn(system, "pinned", affinity={17})
        m.run_for(0.01)
        assert t.cpu == 17
        m.offline_cpu(17)
        m.run_for(0.01)
        assert t.cpu is not None and t.cpu != 17
        assert system.topology.core(t.cpu).online
        before = t.total_runtime_s
        m.run_for(0.01)
        assert t.total_runtime_s > before  # still making progress

    def test_affinity_honoured_again_after_reonline(self):
        system = _system()
        m = system.machine
        t = _spawn(system, "pinned", affinity={17})
        m.run_for(0.01)
        m.offline_cpu(17)
        m.run_for(0.01)
        m.online_cpu(17)
        m.run_for(0.01)
        assert t.cpu == 17

    def test_whole_core_type_offline(self):
        """Hotplugging every E-core leaves a hybrid machine all-P; the
        E-affine thread migrates and the machine keeps ticking."""
        system = _system()
        m = system.machine
        e_cpus = system.topology.cpus_of_type("E-core")
        t = _spawn(system, "e-task", affinity=set(e_cpus))
        m.run_for(0.01)
        assert t.cpu in e_cpus
        for cpu in e_cpus:
            m.offline_cpu(cpu)
        assert set(system.topology.offline_cpus()) == set(e_cpus)
        m.run_for(0.01)
        assert t.cpu not in e_cpus
        assert system.topology.core(t.cpu).ctype.name == "P-core"

    def test_spawn_onto_offline_cpu_gets_fallback_placement(self):
        system = _system()
        m = system.machine
        m.offline_cpu(17)
        t = _spawn(system, "late", affinity={17})
        m.run_for(0.01)
        assert t.cpu is not None and t.cpu != 17
        assert t.total_runtime_s > 0


class TestPerfEventsUnderHotplug:
    def test_open_on_offline_cpu_is_enodev(self):
        system = _system()
        system.machine.offline_cpu(17)
        ptype = system.perf.registry.by_name["cpu_atom"].type
        with pytest.raises(KernelError) as err:
            system.perf.perf_event_open(
                PerfEventAttr(type=ptype, config=0x00C0), pid=-1, cpu=17
            )
        assert err.value.kernel_errno is Errno.ENODEV

    def test_thread_bound_event_follows_migrating_thread(self):
        system = _system()
        m = system.machine
        t = _spawn(system, "app", affinity={16, 17})
        ptype = system.perf.registry.by_name["cpu_atom"].type
        fd = system.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        system.perf.ioctl(fd, PerfIoctl.ENABLE)
        m.run_for(0.02)
        start_cpu = t.cpu
        before = system.perf.read(fd).value
        m.offline_cpu(start_cpu)
        m.run_for(0.02)
        assert t.cpu != start_cpu
        # Counting continued on the new CPU — no park for task events.
        assert system.perf.read(fd).value > before

    def test_cpu_wide_event_parks_and_resumes_round_trip(self):
        """Offline → online round trip: a CPU-bound event accrues
        time_enabled throughout but time_running (and its count) only
        while the CPU is up — the scaling ratio reflects the outage."""
        system = _system()
        m = system.machine
        t = _spawn(system, "app", affinity={17})
        ptype = system.perf.registry.by_name["cpu_atom"].type
        fd = system.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=-1, cpu=17
        )
        system.perf.ioctl(fd, PerfIoctl.ENABLE)

        m.run_for(0.1)
        up = system.perf.read(fd)
        assert up.value > 0

        m.offline_cpu(17)
        assert system.perf._event(fd).parked
        m.run_for(0.2)
        parked = system.perf.read(fd)
        # Dead CPU: nothing counted, wall time still accrues.
        assert parked.value == up.value
        assert parked.time_running_ns == up.time_running_ns
        assert parked.time_enabled_ns == pytest.approx(
            up.time_enabled_ns + 0.2e9, rel=1e-6
        )

        m.online_cpu(17)
        assert not system.perf._event(fd).parked
        m.run_for(0.1)
        back = system.perf.read(fd)
        # The pinned thread snapped back to cpu17, so counting resumed.
        assert back.value > parked.value
        assert back.time_running_ns == pytest.approx(
            parked.time_running_ns + 0.1e9, rel=1e-6
        )
        # 0.2 s outage in a 0.4 s window: running/enabled ratio ≈ 1/2.
        ratio = back.time_running_ns / back.time_enabled_ns
        assert ratio == pytest.approx(0.5, rel=1e-6)
