"""Trace parity: tracing is a pure observer on both engine paths.

Every scenario runs four ways — ``fastpath`` × ``trace`` — and asserts:

* all four runs produce the *same* ``state_digest`` (tracing never
  perturbs simulated state, and the tracer itself is digest-excluded);
* the fast-path and slow-path traces are **identical event sequences**
  (same events, same simulated timestamps, same args) — the tentpole
  contract that lets the macro-tick engine skip the scheduler and the
  perf accrual hooks during replay without losing events;
* workload results (PAPI values) are bit-identical everywhere.
"""

from __future__ import annotations

from repro.checkpoint.surface import global_counter_state, set_global_counter_state
from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System
from repro.trace import to_text

MACHINE = "raptor-lake-i7-13700"
RATES = PhaseRates(
    ipc=2.0,
    flops_per_instr=0.5,
    llc_refs_per_instr=0.01,
    llc_miss_rate=0.3,
    l2_refs_per_instr=0.05,
    l2_miss_rate=0.2,
)


def _run_matrix(build, **system_kw):
    """Run ``build(system) -> result`` under fastpath × trace.

    Global counters (the perf event-id allocator) are rewound between
    runs so all four systems hand out identical ids, making digests and
    trace dumps directly comparable.
    """
    g0 = global_counter_state()
    out = {}
    for fastpath in (False, True):
        for trace in (False, True):
            set_global_counter_state(g0)
            system = System(MACHINE, fastpath=fastpath, trace=trace, **system_kw)
            result = build(system)
            out[(fastpath, trace)] = (system, result)
    return out


def _assert_parity(runs):
    digests = {k: s.state_digest() for k, (s, _) in runs.items()}
    assert len(set(digests.values())) == 1, f"digests diverge: {digests}"
    results = {k: r for k, (_, r) in runs.items()}
    assert len({repr(r) for r in results.values()}) == 1, (
        f"results diverge: {results}"
    )
    slow = to_text(runs[(False, True)][0].tracer.events_list())
    fast = to_text(runs[(True, True)][0].tracer.events_list())
    assert slow == fast, "fast-path trace differs from slow-path trace"
    return slow


def _compute_thread(system, instructions=3e9, name="w0", affinity=None):
    rates = constant_rates(RATES)
    return system.machine.spawn(
        SimThread(name, Program([ComputePhase(instructions, rates)]),
                  affinity=affinity)
    )


class TestTraceParity:
    def test_steady_papi_counting(self):
        """The hot case: a steady compute phase under a counting
        EventSet, where the fast path macro-batches almost every tick."""

        def build(system):
            papi = Papi(system)
            t = _compute_thread(system)
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "PAPI_TOT_INS")
            papi.start(es)
            system.machine.run_for(0.6)
            return papi.stop(es)

        text = _assert_parity(_run_matrix(build, dt_s=0.01))
        assert " papi start " in text and " papi stop " in text
        assert " sched switch_in " in text

    def test_jittered_migrations(self):
        """Interference migrations: every placement change must appear,
        with matched switch-out/in brackets, on both paths."""

        def build(system):
            ts = [_compute_thread(system, name=f"w{i}") for i in range(3)]
            system.machine.run_for(0.5)
            return [t.nr_migrations for t in ts]

        text = _assert_parity(
            _run_matrix(build, dt_s=0.01, migrate_jitter=0.05, seed=11)
        )
        assert " sched migrate " in text

    def test_multiplex_rotation_events(self):
        """Multiplex slot changes are transition-only emissions; the
        recorder's mux guard must break batches at exactly those ticks."""

        def build(system):
            papi = Papi(system)
            p_cpu = system.topology.cpus_of_type("P-core")[0]
            t = _compute_thread(system, instructions=2e9, affinity={p_cpu})
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.set_multiplex(es)
            glc = system.perf.registry.by_name["cpu_core"]
            for _ in range(glc.n_counters + glc.n_fixed + 3):
                papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
            papi.start(es)
            system.machine.run_for(0.3)
            return papi.stop(es)

        text = _assert_parity(_run_matrix(build, dt_s=0.001))
        assert " perf mux_rotate " in text

    def test_overflow_sampling_events(self):
        """Overflow samples mark the recorder unsteady, so sample ticks
        never replay — emission stays path-identical."""

        def build(system):
            papi = Papi(system)
            t = _compute_thread(system, instructions=2e9)
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "PAPI_TOT_INS")
            hits = []
            papi.overflow(es, "PAPI_TOT_INS", 200_000_000, lambda e, s: hits.append(s))
            papi.start(es)
            system.machine.run_for(0.4)
            papi.stop(es)
            return len(hits)

        text = _assert_parity(_run_matrix(build, dt_s=0.01))
        assert " perf overflow " in text

    def test_fault_injection_events(self):
        """Hotplug + sensor-dropout firings break batches and trace the
        same way on both paths; displaced threads get switch-outs."""
        from repro.faults.plan import (
            CpuOffline,
            CpuOnline,
            FaultPlan,
            SensorDropout,
        )

        def build(system):
            ts = [
                _compute_thread(system, name=f"w{i}", affinity={4, 5})
                for i in range(2)
            ]
            plan = (
                FaultPlan()
                .at(0.05, CpuOffline(5))
                .at(0.10, SensorDropout("rapl", mode="stale", duration_s=0.05))
                .at(0.20, CpuOnline(5))
            )
            inj = system.inject_faults(plan)
            system.machine.run_for(0.4)
            return (len(inj.fired), [t.nr_migrations for t in ts])

        text = _assert_parity(_run_matrix(build, dt_s=0.01))
        assert " fault fired " in text
        assert " sched hotplug_offline " in text
        assert " sched hotplug_online " in text

    def test_pmu_mismatch_transitions(self):
        """Cross-core-type placement flips the mismatch state exactly on
        migration ticks (never on replayed steady ticks)."""

        def build(system):
            papi = Papi(system)
            t = _compute_thread(system, instructions=5e9)
            # Bounce the thread between a P-core and an E-core.
            e_cpu = system.topology.cpus_of_type("E-core")[0]
            p_cpu = system.topology.cpus_of_type("P-core")[0]
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
            papi.start(es)
            system.machine.run_for(0.05)
            t.affinity = {e_cpu}
            system.machine.run_for(0.1)
            t.affinity = {p_cpu}
            system.machine.run_for(0.1)
            return papi.stop(es)

        text = _assert_parity(_run_matrix(build, dt_s=0.01))
        assert " perf pmu_mismatch_begin " in text
        assert " perf pmu_mismatch_end " in text

    def test_trace_off_matches_baseline_digest_after_restore_roundtrip(self):
        """A traced system pickles (tracer included) and still digests
        equal to an untraced clone — the digest-exclusion contract."""
        from repro.checkpoint.pickler import dumps, loads

        g0 = global_counter_state()
        traced = System(MACHINE, dt_s=0.01, trace=True)
        _compute_thread(traced)
        traced.machine.run_for(0.1)

        set_global_counter_state(g0)
        plain = System(MACHINE, dt_s=0.01)
        _compute_thread(plain)
        plain.machine.run_for(0.1)

        assert traced.state_digest() == plain.state_digest()
        revived = loads(dumps(traced))
        assert revived.state_digest() == plain.state_digest()
        # The revived tracer carries its event prefix.
        assert revived.tracer.events_list() == traced.tracer.events_list()
