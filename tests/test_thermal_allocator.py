"""Unit tests for the IPA-style thermal power allocator."""

import pytest

from repro.hw.dvfs import DvfsGovernor
from repro.hw.machines import orangepi_800, raptor_lake_i7_13700
from repro.hw.thermal import ThermalModel


def _setup(spec):
    return ThermalModel(spec), DvfsGovernor(spec.topology)


class TestBudgetAllocation:
    def test_cold_package_unconstrained(self):
        spec = orangepi_800()
        tm, gov = _setup(spec)
        tm.apply_throttling(gov, [1.0] * len(spec.topology.clusters), 0.5, 0.01)
        for i, cl in enumerate(spec.topology.clusters):
            assert gov.ceiling_mhz(i) == cl.ctype.max_freq_mhz

    def test_at_trip_floors_big_cluster_first(self):
        spec = orangepi_800()
        tm, gov = _setup(spec)
        tm.temp_c = spec.thermal_trip_c  # exactly at the trip point
        # LITTLE cluster idx 0 (4 active), big idx 1 (2 active).
        tm.apply_throttling(gov, [4.0, 2.0], 0.7, 0.01)
        little_ct = spec.topology.clusters[0].ctype
        big_ct = spec.topology.clusters[1].ctype
        # Big cluster pinned at its floor, LITTLE keeps something real.
        assert gov.ceiling_mhz(1) == pytest.approx(big_ct.min_freq_mhz, rel=0.01)
        assert gov.ceiling_mhz(0) > little_ct.min_freq_mhz * 1.2

    def test_hot_overshoot_floors_everything(self):
        """Past the trip the surplus goes negative: every active cluster
        sits at its floor until the package cools."""
        spec = orangepi_800()
        tm, gov = _setup(spec)
        tm.temp_c = spec.thermal_trip_c + 4.0
        tm.apply_throttling(gov, [4.0, 2.0], 0.7, 0.01)
        for i, cl in enumerate(spec.topology.clusters):
            assert gov.ceiling_mhz(i) == pytest.approx(
                cl.ctype.min_freq_mhz, rel=0.01
            )

    def test_idle_cluster_not_limited(self):
        spec = orangepi_800()
        tm, gov = _setup(spec)
        tm.temp_c = spec.thermal_trip_c + 5.0
        tm.apply_throttling(gov, [0.0, 2.0], 0.7, 0.01)
        # Idle LITTLE cluster keeps its max ceiling.
        assert gov.ceiling_mhz(0) == spec.topology.clusters[0].ctype.max_freq_mhz
        assert gov.ceiling_mhz(1) < spec.topology.clusters[1].ctype.max_freq_mhz

    def test_raptor_never_binds_below_rapl(self):
        """On the desktop the 65 W RAPL cap binds long before thermals:
        at its steady temperature the thermal budget exceeds PL1."""
        spec = raptor_lake_i7_13700()
        tm, gov = _setup(spec)
        steady_c = spec.ambient_c + 65.0 * spec.thermal_r_c_per_w
        tm.temp_c = steady_c
        margin = spec.thermal_trip_c - steady_c
        budget = tm.sustainable_power_w * (
            1 + tm.BUDGET_GAIN_FRACTION_PER_C * margin
        )
        assert budget > 150.0

    def test_throttle_event_counted(self):
        spec = orangepi_800()
        tm, gov = _setup(spec)
        tm.temp_c = spec.thermal_trip_c + 1.0
        before = tm.throttle_events
        tm.apply_throttling(gov, [4.0, 2.0], 0.7, 0.01)
        assert tm.throttle_events == before + 1


class TestClosedLoopStability:
    def test_temperature_converges_near_trip(self):
        """Constant high demand: temperature settles at (not far past)
        the trip point, without oscillation."""
        spec = orangepi_800()
        tm, gov = _setup(spec)
        temps = []
        for _ in range(30000):
            # Both clusters fully active; power follows ceilings.
            activity = [4.0, 2.0]
            power = 0.0
            for i, cl in enumerate(spec.topology.clusters):
                f = gov.ceiling_mhz(i) / 1000.0
                power += cl.ctype.power.core_power(f, 1.0) * activity[i]
            power += 0.7
            tm.step(power, 0.01)
            tm.apply_throttling(gov, activity, 0.7, 0.01)
            temps.append(tm.temp_c)
        tail = temps[-5000:]
        assert max(tail) < spec.thermal_trip_c + 3.0
        assert min(tail) > spec.thermal_trip_c - 6.0
        # No oscillation: the tail's swing stays small.
        assert max(tail) - min(tail) < 2.0
