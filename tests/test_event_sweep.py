"""Exhaustive sweep: every listed event on every machine must be usable.

The §V-4 concern at full breadth — "ideally we will cover all the tests
the current [suite] does, but on all combinations of P and E-cores...
this increases the surface area": every native event libpfm4 lists for a
machine must encode, open against the kernel, count on its own core
type, and stay silent on foreign core types.
"""

import pytest

from repro.kernel.perf.pmu import PmuKind
from repro.kernel.perf.subsystem import PerfIoctl
from repro.papi import Papi
from repro.pfmlib import Pfmlib
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

def RATES(ctype):
    """Exercise every counter: run below the core's raw IPC so stall
    cycles exist, and touch every cache level and the branch units."""
    return PhaseRates(
        ipc=ctype.ipc * 0.8,
        flops_per_instr=2.0,
        llc_refs_per_instr=0.02,
        llc_miss_rate=0.5,
        l2_refs_per_instr=0.1,
        l2_miss_rate=0.3,
        branches_per_instr=0.1,
        branch_miss_rate=0.05,
    )

MACHINES = [
    "raptor-lake-i7-13700",
    "alder-lake-i5-12600k",
    "orangepi-800",
    "dynamiq-three-tier",
    "xeon-homogeneous",
]


@pytest.mark.parametrize("machine", MACHINES)
def test_every_listed_event_opens_and_counts(machine):
    system = System(machine, dt_s=1e-4)
    pfm = Pfmlib(system)
    # One pinned thread per core type, each doing identical work.
    threads = {}
    for ct in system.topology.core_types:
        cpu = system.topology.cpus_of_type(ct.name)[0]
        threads[ct.pfm_pmu] = system.machine.spawn(
            # Long enough to span many 4 ms multiplex rotation periods.
            SimThread(f"w-{ct.name}", Program([ComputePhase(5e8, RATES)]),
                      affinity={cpu})
        )

    fds = []  # (fd, pfm pmu name, event label, target pmu of thread)
    for label in pfm.list_events():
        attr, info = pfm.get_os_event_encoding(label)
        pmu = system.perf.registry.by_type[attr.type]
        if pmu.kind is not PmuKind.CPU:
            fd = system.perf.perf_event_open(attr, pid=-1, cpu=pmu.cpus[0])
            system.perf.ioctl(fd, PerfIoctl.ENABLE)
            fds.append((fd, info.pmu.name, label, None))
            continue
        for target_pmu, t in threads.items():
            fd = system.perf.perf_event_open(attr, pid=t.tid, cpu=-1)
            system.perf.ioctl(fd, PerfIoctl.ENABLE)
            fds.append((fd, info.pmu.name, label, target_pmu))

    system.machine.run_until_done(list(threads.values()), max_s=10)

    for fd, event_pmu, label, target_pmu in fds:
        rv = system.perf.read(fd)
        if target_pmu is None:
            continue  # uncore/RAPL: just must read without error
        if event_pmu == target_pmu:
            assert rv.value > 0, f"{label} counted nothing on its own PMU"
        else:
            assert rv.value == 0, f"{label} leaked onto {target_pmu}"


@pytest.mark.parametrize("machine", MACHINES)
def test_every_preset_counts_when_pinned_anywhere(machine):
    """§V-4's P/E matrix for presets: on every machine, every preset
    counts something when the thread is pinned to any core type."""
    system = System(machine, dt_s=1e-4)
    papi = Papi(system)
    from repro.papi.consts import PRESETS

    for ct in system.topology.core_types:
        cpu = system.topology.cpus_of_type(ct.name)[0]
        t = system.machine.spawn(
            SimThread(f"m-{ct.name}", Program([ComputePhase(3e8, RATES)]),
                      affinity={cpu})
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        added = [name for name in sorted(PRESETS) if papi.query_event(name)]
        # Respect the per-PMU counter budget: presets expand to one slot
        # per core PMU, so cap the simultaneous set.
        papi.set_multiplex(es)
        for name in added:
            papi.add_event(es, name)
        papi.start(es)
        system.machine.run_until_done([t], max_s=10)
        values = dict(zip(added, papi.stop(es)))
        papi.destroy_eventset(es)
        assert values["PAPI_TOT_INS"] > 0, (machine, ct.name)
        assert values["PAPI_TOT_CYC"] > 0, (machine, ct.name)
        for name, v in values.items():
            assert v >= 0, (machine, ct.name, name)
