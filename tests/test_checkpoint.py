"""Checkpoint/restore: the restore-then-run ≡ run-straight-through law.

The tentpole invariant: for any deterministic scenario, snapshotting at
time T, restoring (same or fresh process) and running to the end is
bit-identical — ``state_digest`` equal — to never having snapshotted.
Plus the envelope machinery around it: versioning, integrity checking,
global-counter rewind, closure capture, and the digest's own stability
rules.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.checkpoint import (
    SNAPSHOT_SURFACES,
    SnapshotIntegrityError,
    SnapshotPicklingError,
    SnapshotVersionError,
    load_object,
    read_header,
    save_object,
    state_digest,
)
from repro.checkpoint.pickler import dumps, loads
from repro.checkpoint.surface import global_counter_state, set_global_counter_state
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.3)
)


def _spawn_workload(system):
    return system.machine.spawn_program(
        "app", [ComputePhase(3e9, RATES)], affinity={0}
    )


class TestRestoreEquivalence:
    @pytest.mark.parametrize("fastpath", [True, False])
    def test_restore_then_run_is_bit_identical(self, tmp_path, fastpath):
        g0 = global_counter_state()
        straight = System(MACHINE, dt_s=0.001, fastpath=fastpath)
        _spawn_workload(straight)
        straight.machine.run_until_done(straight.machine.threads, max_s=10)
        d_straight = straight.state_digest()

        set_global_counter_state(g0)
        snapped = System(MACHINE, dt_s=0.001, fastpath=fastpath)
        _spawn_workload(snapped)
        snapped.machine.run_for(0.05)
        path = str(tmp_path / "mid.snap")
        snapped.save(path)

        restored = System.restore(path)
        restored.machine.run_until_done(restored.machine.threads, max_s=10)
        assert restored.state_digest() == d_straight

        # Saving must not have perturbed the donor either.
        snapped.machine.run_until_done(snapped.machine.threads, max_s=10)
        assert snapped.state_digest() == d_straight

    def test_fresh_process_restore_via_cli(self, tmp_path):
        """The ``python -m repro.checkpoint run`` driver replays the tail
        of an HPL run (closure-heavy state) in a new interpreter."""
        from repro.hpl.dat import HplConfig
        from repro.hpl.runner import start_hpl

        g0 = global_counter_state()
        straight = System(MACHINE, dt_s=0.01)
        start_hpl(straight, HplConfig(n=1000, nb=128))
        straight.machine.run_until_done(straight.machine.threads, max_s=100)
        d_straight = straight.state_digest()

        set_global_counter_state(g0)
        snapped = System(MACHINE, dt_s=0.01)
        handle = start_hpl(snapped, HplConfig(n=1000, nb=128))
        snapped.machine.run_for(0.04)
        assert not handle.done
        path = str(tmp_path / "hpl.snap")
        snapped.save(path)

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        out = subprocess.run(
            [sys.executable, "-m", "repro.checkpoint", "run", path],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH=src),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == d_straight

    def test_traced_restore_stitches_one_seamless_trace(self, tmp_path):
        """Snapshot mid-run with tracing on, restore in a *fresh process*,
        finish the run: the stitched trace (prefix carried inside the
        snapshot + events emitted after restore) must equal the trace of
        a never-interrupted run, event for event, timestamp for
        timestamp — and so must the state digest."""
        from repro.trace import to_text

        def spawn(system):
            return system.machine.spawn_program(
                "app", [ComputePhase(3e9, RATES)]
            )

        g0 = global_counter_state()
        straight = System(MACHINE, dt_s=0.01, trace=True, migrate_jitter=0.03)
        spawn(straight)
        straight.machine.run_until_done(straight.machine.threads, max_s=10)
        want_digest = straight.state_digest()
        want_trace = to_text(straight.tracer.events_list())

        set_global_counter_state(g0)
        snapped = System(MACHINE, dt_s=0.01, trace=True, migrate_jitter=0.03)
        spawn(snapped)
        snapped.machine.run_for(0.07)
        assert snapped.tracer.events_list(), "nothing traced before the snap"
        path = str(tmp_path / "traced.snap")
        snapped.save(path)

        script = (
            "import sys\n"
            "from repro.system import System\n"
            "from repro.trace import to_text\n"
            "system = System.restore(sys.argv[1])\n"
            "system.machine.run_until_done(system.machine.threads, max_s=10)\n"
            "print(system.state_digest())\n"
            "sys.stdout.write(to_text(system.tracer.events_list()))\n"
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        out = subprocess.run(
            [sys.executable, "-c", script, path],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH=src),
        )
        assert out.returncode == 0, out.stderr
        got_digest, _, got_trace = out.stdout.partition("\n")
        assert got_digest == want_digest
        assert got_trace == want_trace

    def test_save_meta_and_describe(self, tmp_path):
        system = System(MACHINE, dt_s=0.01)
        system.machine.run_for(0.1)
        path = str(tmp_path / "sys.snap")
        header = system.save(path, meta={"note": "hello"})
        assert header["meta"]["note"] == "hello"
        assert header["meta"]["spec"] == MACHINE
        assert header["meta"]["state_digest"] == system.state_digest()
        assert system.machine.last_checkpoint_path == path

        # read_header parses without unpickling; the CLI prints it.
        assert read_header(path)["meta"]["sim_time_s"] == pytest.approx(0.1)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        out = subprocess.run(
            [sys.executable, "-m", "repro.checkpoint", "describe", path],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH=src),
        )
        assert out.returncode == 0, out.stderr
        assert json.loads(out.stdout)["meta"]["note"] == "hello"


class TestEnvelope:
    def test_corrupt_payload_raises_integrity_error(self, tmp_path):
        path = str(tmp_path / "c.snap")
        save_object({"x": 1}, path)
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises(SnapshotIntegrityError):
            load_object(path)

    def test_version_mismatch_raises_version_error(self, tmp_path):
        path = str(tmp_path / "v.snap")
        save_object({"x": 1}, path)
        with open(path, "rb") as fh:
            magic = fh.readline()
            header = json.loads(fh.readline())
            payload = fh.read()
        header["version"] = 999
        with open(path, "wb") as fh:
            fh.write(magic)
            fh.write((json.dumps(header) + "\n").encode())
            fh.write(payload)
        with pytest.raises(SnapshotVersionError):
            load_object(path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        from repro.checkpoint import SnapshotError

        path = str(tmp_path / "junk.snap")
        open(path, "wb").write(b"definitely not a snapshot\n")
        with pytest.raises(SnapshotError):
            read_header(path)

    def test_global_counter_rewound_on_load(self, tmp_path):
        from repro.kernel.perf.event import _get_next_event_id

        system = System(MACHINE, dt_s=0.01)
        path = str(tmp_path / "g.snap")
        system.save(path)
        at_save = _get_next_event_id()

        # Opening more events advances the allocator...
        other = System(MACHINE, dt_s=0.01)
        t = other.machine.spawn_program("w", [ComputePhase(1e8, RATES)])
        from repro.kernel.perf import PerfEventAttr

        ptype = other.perf.registry.by_name["cpu_core"].type
        other.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        assert _get_next_event_id() > at_save

        # ...and load_object rewinds it to the saved position, so the
        # restored run hands out the ids the original would have.
        System.restore(path)
        assert _get_next_event_id() == at_save

    def test_restore_rejects_wrong_payload_type(self, tmp_path):
        from repro.checkpoint import SnapshotError

        path = str(tmp_path / "dict.snap")
        save_object({"system": 1}, path)
        with pytest.raises(SnapshotError):
            System.restore(path)


class TestClosurePickling:
    def test_closures_and_shared_cells_survive(self):
        def make_counter():
            n = [0]

            def bump():
                n[0] += 1
                return n[0]

            def peek():
                return n[0]

            return bump, peek

        bump, peek = make_counter()
        bump()
        bump2, peek2 = loads(dumps((bump, peek)))
        # The restored pair shares one cell, like the original.
        assert peek2() == 1
        assert bump2() == 2
        assert peek2() == 2

    def test_lambda_with_defaults_and_globals(self):
        factor = 3.5
        f = lambda x, k=2: x * k * factor * RATES(None).ipc  # noqa: E731
        g = loads(dumps(f))
        assert g(2.0) == f(2.0)
        assert g(2.0, k=5) == f(2.0, k=5)

    def test_unpicklable_object_raises_typed_error(self):
        import threading

        with pytest.raises(SnapshotPicklingError):
            dumps(threading.Lock())


class TestDigest:
    def test_function_digest_stable_across_pickle_roundtrip(self):
        scale = 2.0
        f = lambda x: x * scale  # noqa: E731
        assert state_digest(loads(dumps(f))) == state_digest(f)

    def test_aliasing_is_part_of_the_digest(self):
        shared = [1, 2]
        assert state_digest([shared, shared]) != state_digest(
            [[1, 2], [1, 2]]
        )

    def test_set_digest_is_order_insensitive(self):
        assert state_digest({"a", "b", "c"}) == state_digest({"c", "a", "b"})

    def test_nan_and_negative_zero_are_bitwise(self):
        assert state_digest(float("nan")) == state_digest(float("nan"))
        assert state_digest(0.0) != state_digest(-0.0)

    def test_digest_excludes_engine_path_but_not_state(self):
        a = System(MACHINE, dt_s=0.01, fastpath=True)
        b = System(MACHINE, dt_s=0.01, fastpath=False)
        assert a.state_digest() == b.state_digest()
        b.machine.run_for(0.01)
        assert a.state_digest() != b.state_digest()


class TestSurfaceRegistry:
    def test_declared_caches_have_rebuilders(self):
        for cls, spec in SNAPSHOT_SURFACES.items():
            if spec["caches"]:
                assert spec["rebuild"], f"{cls.__name__} caches need a rebuild hook"
                assert callable(getattr(cls, spec["rebuild"]))

    def test_core_layers_are_declared(self):
        # Declarations register at class-creation time; pull in every
        # layer module so the registry is complete.
        import repro.faults.injector  # noqa: F401
        import repro.monitor.sampler  # noqa: F401
        import repro.papi.library  # noqa: F401

        declared = {cls.__qualname__ for cls in SNAPSHOT_SURFACES}
        for name in (
            "Machine",
            "SimThread",
            "SimClock",
            "Scheduler",
            "PerfSubsystem",
            "KernelPerfEvent",
            "EventSet",
            "Papi",
            "Sampler",
            "FaultInjector",
            "DvfsGovernor",
            "ThermalModel",
            "RaplPackage",
            "PowerModel",
            "Tracer",
            "TraceConfig",
            "MetricsRegistry",
        ):
            assert name in declared, f"{name} must declare its snapshot surface"

    def test_machine_caches_dropped_and_rebuilt(self, tmp_path):
        system = System(MACHINE, dt_s=0.01)
        system.machine._rate_vecs_by_id[1] = "poison"
        path = str(tmp_path / "m.snap")
        system.save(path)
        restored = System.restore(path)
        assert restored.machine._rate_vecs_by_id == {}
        assert restored.machine._rec is None
