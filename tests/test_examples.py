"""The shipped examples must run and print what they promise."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    buf = io.StringIO()
    with redirect_stdout(buf):
        mod.main()
    return buf.getvalue()


def test_quickstart_reproduces_the_split():
    out = _run_example("quickstart")
    assert "heterogeneous=True" in out
    assert "Average instructions p:" in out
    # The chosen seed lands essentially on the paper's numbers.
    assert "p: 845630 e: 166810" in out


def test_core_detection_survey():
    out = _run_example("core_detection")
    assert "MISLEADING" in out              # x86 cpuinfo pitfall
    assert "cpuid is Intel-specific" in out  # ARM limitation
    assert "apmu0" in out                    # ACPI renaming
    assert out.count("-> consensus") == 6


def test_perf_stat_tool_example():
    out = _run_example("perf_stat_tool")
    assert "PAPI calipered region" in out
    assert "region IPC = 3.00" in out


def test_biglittle_throttling_example():
    out = _run_example("biglittle_throttling")
    assert "throttled within" in out
    assert "faster than 2 throttled big" in out


def test_guided_scheduling_example():
    out = _run_example("guided_scheduling")
    assert "guided" in out and "inverted" in out
    assert "makespan" in out


def test_hpl_motivation_importable():
    """The heavyweight example is exercised by the benchmarks; here we
    only verify it loads and wires up the experiment modules."""
    spec = importlib.util.spec_from_file_location(
        "hpl_motivation", EXAMPLES / "hpl_motivation.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert callable(mod.main)


def test_overflow_profiling_example():
    out = _run_example("overflow_profiling")
    assert "overflow samples" in out
    assert "cpu_core" in out and "cpu_atom" in out
