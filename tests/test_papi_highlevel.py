"""The high-level region API: the calipering PAPI offers over perf."""

import pytest

from repro.papi import Papi, PapiError
from repro.papi.highlevel import HighLevelApi
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


def test_region_measures_only_its_span(raptor):
    """Calipering: counts cover the wrapped chunk, not the whole program —
    exactly what the paper says perf cannot do."""
    papi = Papi(raptor)
    p_cpu = raptor.topology.cpus_of_type("P-core")[0]
    hl_holder = {}

    items = [
        ComputePhase(3e6, RATES, label="unmeasured-prefix"),
        ControlOp(lambda th: hl_holder["hl"].region_begin("kernel")),
        ComputePhase(1e6, RATES, label="measured"),
        ControlOp(lambda th: hl_holder["hl"].region_end("kernel")),
        ComputePhase(2e6, RATES, label="unmeasured-suffix"),
    ]
    t = raptor.machine.spawn(SimThread("app", Program(items), affinity={p_cpu}))
    hl_holder["hl"] = HighLevelApi(papi, t)
    raptor.machine.run_until_done([t], max_s=5)
    stats = hl_holder["hl"].regions["kernel"]
    assert stats.invocations == 1
    # Instructions inside the region only (plus small PAPI overhead).
    assert stats.as_dict()["PAPI_TOT_INS"] == pytest.approx(1e6, rel=0.02)


def test_region_accumulates_over_invocations(raptor):
    papi = Papi(raptor)
    p_cpu = raptor.topology.cpus_of_type("P-core")[0]
    hl_holder = {}
    items = []
    for _ in range(5):
        items += [
            ControlOp(lambda th: hl_holder["hl"].region_begin("loop")),
            ComputePhase(1e5, RATES),
            ControlOp(lambda th: hl_holder["hl"].region_end("loop")),
        ]
    t = raptor.machine.spawn(SimThread("app", Program(items), affinity={p_cpu}))
    hl_holder["hl"] = HighLevelApi(papi, t)
    raptor.machine.run_until_done([t], max_s=5)
    stats = hl_holder["hl"].regions["loop"]
    assert stats.invocations == 5
    # Per-invocation PAPI call overhead lands inside each region, so the
    # total exceeds the pure work by a small margin.
    total = stats.as_dict()["PAPI_TOT_INS"]
    assert 5e5 <= total <= 5e5 * 1.15


def test_mismatched_region_end(raptor):
    papi = Papi(raptor)
    t = raptor.machine.spawn(SimThread("app", Program([ComputePhase(1e5, RATES)])))
    hl = HighLevelApi(papi, t)
    with pytest.raises(PapiError):
        hl.region_end("never-opened")


def test_nested_region_rejected(raptor):
    papi = Papi(raptor)
    seen = {}
    hl_holder = {}

    def begin_twice(th):
        hl_holder["hl"].region_begin("outer")
        try:
            hl_holder["hl"].region_begin("inner")
        except PapiError as exc:
            seen["error"] = exc
        hl_holder["hl"].region_end("outer")

    t = raptor.machine.spawn(
        SimThread("app", Program([ControlOp(begin_twice), ComputePhase(1e5, RATES)]))
    )
    hl_holder["hl"] = HighLevelApi(papi, t)
    raptor.machine.run_until_done([t], max_s=5)
    assert "error" in seen


def test_custom_events_and_shutdown(raptor):
    papi = Papi(raptor)
    p_cpu = raptor.topology.cpus_of_type("P-core")[0]
    hl_holder = {}
    items = [
        ControlOp(lambda th: hl_holder["hl"].region_begin("r")),
        ComputePhase(1e6, RATES),
        ControlOp(lambda th: hl_holder["hl"].region_end("r")),
    ]
    t = raptor.machine.spawn(SimThread("app", Program(items), affinity={p_cpu}))
    hl_holder["hl"] = HighLevelApi(papi, t, events=("PAPI_TOT_INS", "PAPI_L3_TCM"))
    raptor.machine.run_until_done([t], max_s=5)
    d = hl_holder["hl"].regions["r"].as_dict()
    assert set(d) == {"PAPI_TOT_INS", "PAPI_L3_TCM"}
    hl_holder["hl"].shutdown()
