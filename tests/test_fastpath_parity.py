"""Engine parity matrix: every engine must be bit-identical on every
deterministic workload.

Every scenario here runs once per engine — ``engine="ticks"`` (the
plain single-tick loop), ``engine="macro"`` (steady-state macro-tick
batching) and ``engine="events"`` (the event-driven core) — and asserts
equality of the *whole snapshot surface* via ``state_digest``: thread
counters, perf read values and event clocks, scheduler RNG position,
RAPL energy, thermal state, everything the checkpoint layer declares as
state.  The experiments' correctness claims rest on the counter
semantics, so no tolerance is allowed; any new state a layer grows is
covered automatically.  Structured trace streams must match byte for
byte too, and a mid-run checkpoint/restore under the event engine must
rejoin the same digest.
"""

from __future__ import annotations

from repro.checkpoint import state_digest
from repro.checkpoint.surface import global_counter_state, set_global_counter_state
from repro.papi import Papi
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import (
    ComputePhase,
    PhaseRates,
    SleepPhase,
    SpinBarrier,
    constant_rates,
)
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = PhaseRates(
    ipc=2.0,
    flops_per_instr=0.5,
    llc_refs_per_instr=0.01,
    llc_miss_rate=0.3,
    l2_refs_per_instr=0.05,
    l2_miss_rate=0.2,
)


#: The full engine matrix, in "reference first" order.
ENGINES = ("ticks", "macro", "events")


def _run_matrix(build, **system_kw):
    """Run ``build(system) -> result`` once per engine.

    Process-global counters (the perf event-id allocator) are rewound
    between builds so every system hands out identical ids — exactly
    what a checkpoint restore does — making whole-system digests
    directly comparable.  Returns ``[(system, result), ...]`` in
    :data:`ENGINES` order.
    """
    out = []
    g0 = global_counter_state()
    for engine in ENGINES:
        set_global_counter_state(g0)
        system = System(MACHINE, engine=engine, **system_kw)
        out.append((system, build(system)))
    return out


def _assert_threads_identical(threads_ref, threads_other):
    """Per-thread digest equality (localizes a whole-system mismatch)."""
    assert len(threads_ref) == len(threads_other)
    for a, b in zip(threads_ref, threads_other):
        assert state_digest(a) == state_digest(b), (
            f"{a.name} diverges between engines"
        )


def _assert_systems_identical(*systems):
    """The tight form: one digest over the full snapshot surface.

    ``fastpath``/``engine`` selection and engine internals are declared
    ``digest_exclude`` by the Machine's snapshot surface, so all engines
    must digest equal — everything else (counters, clocks, RNGs,
    energies, sample buffers) is covered with zero tolerance.
    """
    digests = [s.state_digest() for s in systems]
    assert len(set(digests)) == 1, (
        f"engine digests diverge: {dict(zip(ENGINES, digests))}"
    )


def _fastpath_batched(machine, run):
    """Run ``run()`` counting real ``tick()`` executions; return (real,
    clock) tick counts so tests can assert batching actually engaged."""
    real = [0]
    orig = machine.tick

    def counted():
        real[0] += 1
        orig()

    machine.tick = counted
    start = machine.clock.ticks
    try:
        run()
    finally:
        # Remove the shadowing instance attribute entirely (assigning
        # ``orig`` back would leave a bound method in ``__dict__`` and
        # show up as a digest difference vs. an untouched machine).
        del machine.tick
    return real[0], machine.clock.ticks - start


class TestSteadyScenarios:
    def test_compute_spin_sleep_parity(self):
        """Threads computing, spinning at a barrier and sleeping."""

        def build(system):
            barrier = SpinBarrier(2)
            rates = constant_rates(RATES)

            def mk():
                return [
                    ComputePhase(
                        5e9, rates, on_complete=lambda t: barrier.arrive()
                    ),
                    barrier.wait_phase(),
                    SleepPhase(duration_s=0.3),
                    ComputePhase(2e9, rates),
                ]

            ts = [
                system.machine.spawn(SimThread(f"w{i}", Program(mk())))
                for i in range(2)
            ]
            assert system.machine.run_until_done(ts, max_s=100)
            return ts

        (ss, ts_slow), (sf, ts_fast), (se, ts_ev) = _run_matrix(
            build, dt_s=0.01
        )
        _assert_threads_identical(ts_slow, ts_fast)
        _assert_threads_identical(ts_slow, ts_ev)
        _assert_systems_identical(ss, sf, se)

    def test_idle_cooldown_parity_and_batching(self):
        """A long idle cooldown must batch (macro) / leap (events) and
        stay identical."""

        def build(system):
            system.machine.thermal.temp_c = 80.0
            system.machine.thermal.zone.temp_c = 80.0
            return None

        (ss, _), (sf, _), (se, _) = _run_matrix(build, dt_s=0.01)
        ss.machine.run_ticks(3000)
        real_f, ticks_f = _fastpath_batched(
            sf.machine, lambda: sf.machine.run_ticks(3000)
        )
        real_e, ticks_e = _fastpath_batched(
            se.machine, lambda: se.machine.run_ticks(3000)
        )
        assert ticks_f == ticks_e == 3000
        assert real_f < 100  # the vast majority of ticks were replayed
        assert real_e < 100
        _assert_systems_identical(ss, sf, se)

    def test_run_until_cooldown_parity(self):
        (ss, _), (sf, _), (se, _) = _run_matrix(lambda s: None, dt_s=0.01)
        for system in (ss, sf, se):
            system.machine.thermal.temp_c = 70.0
            system.machine.thermal.zone.temp_c = 70.0
            assert system.machine.cool_down(target_c=36.0, max_s=600)
        _assert_systems_identical(ss, sf, se)


class TestPerfAndPapiParity:
    def test_quickstart_eventset_parity(self):
        """The quickstart scenario: hybrid EventSet calipering reps."""

        def build(system):
            papi = Papi(system, mode="hybrid")
            rates = constant_rates(RATES)
            results = []
            holder = {}

            def setup(thread):
                es = papi.create_eventset()
                papi.attach(es, thread)
                papi.add_event(es, "adl_glc::INST_RETIRED:ANY", caller=thread)
                papi.add_event(es, "adl_grt::INST_RETIRED:ANY", caller=thread)
                papi.start(es, caller=thread)
                holder["es"] = es

            def measure(thread):
                results.append(tuple(papi.read(holder["es"], caller=thread)))
                papi.reset(holder["es"], caller=thread)

            items = [ControlOp(setup)]
            for _ in range(10):
                items.append(ComputePhase(5e6, rates))
                items.append(ControlOp(measure))
            items.append(ControlOp(lambda th: papi.stop(holder["es"], caller=th)))
            t = system.machine.spawn(SimThread("caliper", Program(items)))
            assert system.machine.run_until_done([t], max_s=10)
            return t, results

        (ss, (t_slow, r_slow)), (sf, (t_fast, r_fast)), (se, (t_ev, r_ev)) = (
            _run_matrix(build, dt_s=2e-5)
        )
        assert r_slow == r_fast == r_ev
        _assert_threads_identical([t_slow], [t_fast])
        _assert_threads_identical([t_slow], [t_ev])
        _assert_systems_identical(ss, sf, se)

    def test_migration_scenario_parity(self):
        """With scheduler jitter both paths run tick-by-tick; the RNG
        stream and therefore migrations must match exactly."""

        def build(system):
            t = system.machine.spawn(
                SimThread("app", Program([ComputePhase(2e7, constant_rates(RATES))]))
            )
            fd_p = _open_counting(system, "cpu_core", t.tid)
            fd_e = _open_counting(system, "cpu_atom", t.tid)
            assert system.machine.run_until_done([t], max_s=10)
            return t, (
                _read_fields(system.perf.read(fd_p)),
                _read_fields(system.perf.read(fd_e)),
            )

        (ss, (t_slow, r_slow)), (sf, (t_fast, r_fast)), (se, (t_ev, r_ev)) = (
            _run_matrix(
                build,
                dt_s=1e-4,
                seed=2,
                migrate_jitter=0.1,
                rebalance_jitter=0.1,
            )
        )
        assert t_slow.nr_migrations == t_fast.nr_migrations > 0
        assert t_slow.nr_migrations == t_ev.nr_migrations
        assert r_slow == r_fast == r_ev
        _assert_threads_identical([t_slow], [t_fast])
        _assert_threads_identical([t_slow], [t_ev])
        _assert_systems_identical(ss, sf, se)

    def test_perf_read_values_identical_across_batches(self):
        """Per-thread perf events survive macro-tick batching bit-for-bit."""

        def build(system):
            t = system.machine.spawn(
                SimThread(
                    "app", Program([ComputePhase(5e9, constant_rates(RATES))])
                )
            )
            fds = [
                _open_counting(system, "cpu_core", t.tid, config=c)
                for c in (0x00C0, 0x003C)
            ]
            assert system.machine.run_until_done([t], max_s=100)
            return [_read_fields(system.perf.read(fd)) for fd in fds]

        (ss, r_slow), (sf, r_fast), (se, r_ev) = _run_matrix(build, dt_s=0.01)
        assert r_slow == r_fast == r_ev
        _assert_systems_identical(ss, sf, se)


class TestMultiplexedBatching:
    """Satellite regression: enabled/running scaling of multiplexed
    events must accrue identically when ticks are replayed in a batch."""

    def test_mux_rotation_constants_agree(self):
        from repro.kernel.perf import subsystem
        from repro.sim import fastpath

        assert (
            fastpath.MUX_ROTATION_PERIOD_S == subsystem.MUX_ROTATION_PERIOD_S
        )

    def test_mux_scaling_parity_across_batches(self):
        """Three events time-sharing one counter across a long steady
        compute phase: slow and fast paths must agree bit-for-bit on
        value, time_enabled and time_running."""

        def build(system):
            glc = system.perf.registry.by_name["cpu_core"]
            # Leave a single free generic counter so the three events
            # must rotate; rotation happens *within* macro-tick batches.
            system.perf.reserve_counters(
                "cpu_core", glc.n_counters + glc.n_fixed - 1
            )
            p_cpu = system.topology.cpus_of_type("P-core")[0]
            t = system.machine.spawn(
                SimThread(
                    "app",
                    Program([ComputePhase(2e9, constant_rates(RATES))]),
                    affinity={p_cpu},
                )
            )
            fds = [
                _open_counting(system, "cpu_core", t.tid, config=0x00C0)
                for _ in range(3)
            ]
            assert system.machine.run_until_done([t], max_s=100)
            return t, [system.perf.read(fd) for fd in fds]

        (ss, (t_slow, r_slow)), (sf, (t_fast, r_fast)), (se, (t_ev, r_ev)) = (
            _run_matrix(build, dt_s=0.001)
        )
        fields_slow = [_read_fields(r) for r in r_slow]
        assert fields_slow == [_read_fields(r) for r in r_fast]
        assert fields_slow == [_read_fields(r) for r in r_ev]
        # The events really were multiplexed, and the scaled estimate
        # still reconstructs the full instruction count.
        for rv in r_fast:
            assert rv.time_running_ns < rv.time_enabled_ns
        total_scaled = sum(rv.scaled_value() for rv in r_fast)
        assert abs(total_scaled - 3 * 2e9) / (3 * 2e9) < 0.3
        _assert_threads_identical([t_slow], [t_fast])
        _assert_threads_identical([t_slow], [t_ev])
        _assert_systems_identical(ss, sf, se)

    def test_mux_batch_engages_while_rotating(self):
        """Rotation alone must not kill batching: the rotation slot is a
        replay guard, so batches end at slot boundaries, not every tick."""
        system = System(MACHINE, dt_s=0.0001)
        glc = system.perf.registry.by_name["cpu_core"]
        system.perf.reserve_counters("cpu_core", glc.n_counters + glc.n_fixed - 1)
        p_cpu = system.topology.cpus_of_type("P-core")[0]
        t = system.machine.spawn(
            SimThread(
                "app",
                Program([ComputePhase(1e10, constant_rates(RATES))]),
                affinity={p_cpu},
            )
        )
        for _ in range(2):
            _open_counting(system, "cpu_core", t.tid)
        real, ticks = _fastpath_batched(
            system.machine, lambda: system.machine.run_ticks(2000)
        )
        assert ticks == 2000
        # A 4 ms rotation period at 0.1 ms ticks ⇒ roughly one real tick
        # per 40-tick slot, not one per tick.
        assert real < 600


class TestHplParity:
    def test_small_hpl_run_parity(self):
        from repro.hpl import HplConfig, run_hpl

        def build(system):
            cpus = system.topology.primary_threads()
            result = run_hpl(
                system, HplConfig(n=1536, nb=192), variant="intel", cpus=cpus
            )
            return result

        (ss, r_slow), (sf, r_fast), (se, r_ev) = _run_matrix(build, dt_s=0.01)
        for other in (r_fast, r_ev):
            assert r_slow.wall_s == other.wall_s
            assert r_slow.gflops == other.gflops
            assert r_slow.energy_j == other.energy_j
        ref = sorted(ss.machine.threads, key=lambda t: t.tid)
        for sx in (sf, se):
            _assert_threads_identical(
                ref, sorted(sx.machine.threads, key=lambda t: t.tid)
            )
        _assert_systems_identical(ss, sf, se)


class TestFaultInjectionParity:
    """Injected faults are guard violations: the fast path must fall back
    to real ticks around them and stay bit-identical to the slow path."""

    def test_timed_hotplug_parity(self):
        from repro.faults import CpuOffline, CpuOnline, FaultPlan

        def build(system):
            m = system.machine
            rates = constant_rates(RATES)
            surv = m.spawn(
                SimThread(
                    "surv", Program([ComputePhase(3e9, rates)]), affinity={0}
                )
            )
            roam = m.spawn(
                SimThread(
                    "roam", Program([ComputePhase(8e8, rates)]), affinity={16, 17}
                )
            )
            fds = [
                _open_counting(system, pmu, surv.tid)
                for pmu in ("cpu_core", "cpu_atom")
            ]
            plan = FaultPlan().at(0.05, CpuOffline(17)).at(0.12, CpuOnline(17))
            inj = system.inject_faults(plan)
            assert m.run_until_done([surv, roam], max_s=10)
            assert inj.pending == 0
            return [surv, roam], [
                _read_fields(system.perf.read(fd)) for fd in fds
            ]

        (ss, (ts_slow, r_slow)), (sf, (ts_fast, r_fast)), (se, (ts_ev, r_ev)) = (
            _run_matrix(build, dt_s=0.001)
        )
        assert r_slow == r_fast == r_ev
        _assert_threads_identical(ts_slow, ts_fast)
        _assert_threads_identical(ts_slow, ts_ev)
        _assert_systems_identical(ss, sf, se)

    def test_conditional_injection_parity(self):
        """``when()`` predicates are evaluated inside the batch guard, so
        they fire at the exact tick the slow path fires them."""
        from repro.faults import CpuOffline, CpuOnline, FaultPlan

        def build(system):
            m = system.machine
            t = m.spawn(
                SimThread(
                    "app",
                    Program([ComputePhase(1.5e9, constant_rates(RATES))]),
                    affinity={16, 17},
                )
            )
            plan = (
                FaultPlan()
                .when(lambda: t.total_runtime_s > 0.04, CpuOffline(16))
                .when(lambda: t.total_runtime_s > 0.09, CpuOnline(16))
            )
            inj = system.inject_faults(plan)
            assert m.run_until_done([t], max_s=10)
            return [t], [(at, type(f).__name__) for at, f in inj.fired]

        (ss, (ts_slow, f_slow)), (sf, (ts_fast, f_fast)), (se, (ts_ev, f_ev)) = (
            _run_matrix(build, dt_s=0.001)
        )
        assert f_slow == f_fast == f_ev  # identical fire times, to the tick
        assert [k for _, k in f_slow] == ["CpuOffline", "CpuOnline"]
        _assert_threads_identical(ts_slow, ts_fast)
        _assert_threads_identical(ts_slow, ts_ev)
        _assert_systems_identical(ss, sf, se)

    def test_syscall_storm_parity(self):
        """EBUSY retries charge syscall overhead to the caller; both
        paths must absorb the same storm at the same reads."""
        from repro.faults import FaultPlan, PerfSyscallStorm

        def build(system):
            papi = Papi(system, mode="hybrid")
            rates = constant_rates(RATES)
            results = []
            holder = {}

            def setup(thread):
                es = papi.create_eventset()
                papi.attach(es, thread)
                papi.add_event(es, "adl_glc::INST_RETIRED:ANY", caller=thread)
                papi.start(es, caller=thread)
                holder["es"] = es

            def measure(thread):
                results.append(tuple(papi.read(holder["es"], caller=thread)))

            items = [ControlOp(setup)]
            for _ in range(6):
                items.append(ComputePhase(5e6, rates))
                items.append(ControlOp(measure))
            t = system.machine.spawn(SimThread("caliper", Program(items)))
            plan = FaultPlan().at(
                1e-3, PerfSyscallStorm(errno_name="EBUSY", count=3, ops=("read",))
            )
            system.inject_faults(plan)
            assert system.machine.run_until_done([t], max_s=10)
            return [t], results

        (ss, (ts_slow, r_slow)), (sf, (ts_fast, r_fast)), (se, (ts_ev, r_ev)) = (
            _run_matrix(build, dt_s=2e-5)
        )
        assert r_slow == r_fast == r_ev
        _assert_threads_identical(ts_slow, ts_fast)
        _assert_threads_identical(ts_slow, ts_ev)
        _assert_systems_identical(ss, sf, se)

    def test_sensor_dropout_and_counter_storm_parity(self):
        from repro.faults import CounterStorm, FaultPlan, SensorDropout

        def build(system):
            m = system.machine
            t = m.spawn(
                SimThread(
                    "app",
                    Program([ComputePhase(2e9, constant_rates(RATES))]),
                    affinity={0},
                )
            )
            fd = _open_counting(system, "cpu_core", t.tid)
            plan = (
                FaultPlan()
                .at(0.02, SensorDropout("rapl", "stale", duration_s=0.03))
                .at(0.04, CounterStorm())
            )
            inj = system.inject_faults(plan)
            m.run_for(0.08)
            assert inj.pending == 0
            return [t], _read_fields(system.perf.read(fd))

        (ss, (ts_slow, r_slow)), (sf, (ts_fast, r_fast)), (se, (ts_ev, r_ev)) = (
            _run_matrix(build, dt_s=0.001)
        )
        assert r_slow == r_fast == r_ev
        _assert_threads_identical(ts_slow, ts_fast)
        _assert_threads_identical(ts_slow, ts_ev)
        _assert_systems_identical(ss, sf, se)

    def test_pending_faults_do_not_kill_batching(self):
        """An armed injector is a replay guard, not a batching veto: an
        idle stretch with a far-future fault still macro-ticks."""
        from repro.faults import FaultPlan, SensorDropout

        system = System(MACHINE, dt_s=0.01)
        plan = FaultPlan().at(
            10.0, SensorDropout("rapl", "stale", duration_s=0.5)
        )
        inj = system.inject_faults(plan)
        real, ticks = _fastpath_batched(
            system.machine, lambda: system.machine.run_ticks(3000)
        )
        assert ticks == 3000
        assert inj.pending == 0  # dropout and auto-restore both fired
        assert real < 100


class TestTraceAndCheckpointMatrix:
    """Structured traces must dump byte-for-byte identically from every
    engine, and a mid-run checkpoint taken under the event engine must
    restore and rejoin the uninterrupted run's digest."""

    def test_trace_dumps_byte_identical_across_engines(self):
        from repro.trace.export import to_text

        def build(system):
            rates = constant_rates(RATES)
            system.machine.thermal.temp_c = 80.0
            system.machine.thermal.zone.temp_c = 80.0
            t = system.machine.spawn(
                SimThread(
                    "app",
                    Program(
                        [
                            ComputePhase(1e9, rates),
                            SleepPhase(duration_s=0.05),
                            ComputePhase(5e8, rates),
                        ]
                    ),
                )
            )
            fd = _open_counting(system, "cpu_core", t.tid)
            assert system.machine.run_until_done([t], max_s=10)
            system.perf.read(fd)
            return to_text(system.tracer.events_list())

        (ss, txt_slow), (sf, txt_fast), (se, txt_ev) = _run_matrix(
            build, dt_s=0.001, trace=True
        )
        assert txt_slow == txt_fast == txt_ev
        assert txt_slow.count("\n") > 10  # the trace is non-trivial
        _assert_systems_identical(ss, sf, se)

    def test_events_engine_midrun_checkpoint_restore(self, tmp_path):
        """Save mid-run under ``engine="events"``, restore, and continue:
        the restored system must land on the uninterrupted run's digest
        tick for tick (and so must the other engines)."""

        def build(system):
            rates = constant_rates(RATES)
            system.machine.thermal.temp_c = 75.0
            system.machine.thermal.zone.temp_c = 75.0
            ts = [
                system.machine.spawn(
                    SimThread(f"w{i}", Program([ComputePhase(3e9, rates)]))
                )
                for i in range(2)
            ]
            _open_counting(system, "cpu_core", ts[0].tid)
            system.machine.run_ticks(40)
            return ts

        path = str(tmp_path / "midrun.ckpt")
        g0 = global_counter_state()
        se = System(MACHINE, engine="events", dt_s=0.001)
        build(se)
        se.save(path)
        restored = System.restore(path)
        assert restored.machine.engine == "events"
        assert restored.state_digest() == se.state_digest()

        # Continue both to the same tick; they must stay locked together.
        for system in (se, restored):
            system.machine.run_ticks(160)
        assert restored.state_digest() == se.state_digest()

        # And the whole continuation matches the non-event engines
        # running the same scenario straight through.
        for engine in ("ticks", "macro"):
            set_global_counter_state(g0)
            ref = System(MACHINE, engine=engine, dt_s=0.001)
            build(ref)
            ref.machine.run_ticks(160)
            assert ref.state_digest() == se.state_digest()


def _read_fields(read_value):
    """PerfReadValue minus the process-global ``id`` field, which differs
    between two System instances by construction."""
    return (
        read_value.value,
        read_value.time_enabled_ns,
        read_value.time_running_ns,
    )


def _open_counting(system, pmu_name, tid, config=0x00C0):
    from repro.kernel.perf import PerfEventAttr
    from repro.kernel.perf.subsystem import PerfIoctl

    ptype = system.perf.registry.by_name[pmu_name].type
    fd = system.perf.perf_event_open(
        PerfEventAttr(type=ptype, config=config), pid=tid, cpu=-1
    )
    system.perf.ioctl(fd, PerfIoctl.ENABLE)
    return fd
