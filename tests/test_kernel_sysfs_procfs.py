"""Unit tests for the virtual /sys and /proc trees."""

import pytest

from repro.hw.machines import orangepi_800
from repro.kernel.sched.affinity import parse_cpu_list
from repro.system import System


class TestSysfsPmus:
    def test_pmu_type_files(self, raptor):
        t_core = int(raptor.sysfs.read("/sys/devices/cpu_core/type"))
        t_atom = int(raptor.sysfs.read("/sys/devices/cpu_atom/type"))
        assert t_core != t_atom
        assert t_core == raptor.perf.registry.by_name["cpu_core"].type

    def test_pmu_cpus_files(self, raptor):
        cpus_core = parse_cpu_list(raptor.sysfs.read("/sys/devices/cpu_core/cpus"))
        cpus_atom = parse_cpu_list(raptor.sysfs.read("/sys/devices/cpu_atom/cpus"))
        assert cpus_core == set(raptor.topology.cpus_of_type("P-core"))
        assert cpus_atom == set(raptor.topology.cpus_of_type("E-core"))
        assert not cpus_core & cpus_atom

    def test_uncore_has_cpumask_not_cpus(self, raptor):
        assert raptor.sysfs.exists("/sys/devices/uncore_llc/cpumask")
        assert not raptor.sysfs.exists("/sys/devices/uncore_llc/cpus")

    def test_arm_firmware_naming(self, orangepi, orangepi_acpi):
        """devicetree and ACPI firmware name the same PMU differently."""
        assert orangepi.sysfs.exists("/sys/devices/armv8_cortex_a72/type")
        assert not orangepi_acpi.sysfs.exists("/sys/devices/armv8_cortex_a72/type")
        assert orangepi_acpi.sysfs.exists("/sys/devices/apmu0/type")

    def test_listdir(self, raptor):
        names = raptor.sysfs.listdir("/sys/devices")
        assert "cpu_core" in names and "cpu_atom" in names

    def test_missing_path(self, raptor):
        with pytest.raises(FileNotFoundError):
            raptor.sysfs.read("/sys/no/such/file")
        with pytest.raises(FileNotFoundError):
            raptor.sysfs.listdir("/sys/no/such/dir")


class TestSysfsCpus:
    def test_cpu_capacity_arm_only(self, raptor, orangepi):
        """cpu_capacity is an arm64-only interface, as §IV-B notes."""
        assert not raptor.sysfs.exists("/sys/devices/system/cpu/cpu0/cpu_capacity")
        cap_little = int(orangepi.sysfs.read("/sys/devices/system/cpu/cpu0/cpu_capacity"))
        cap_big = int(orangepi.sysfs.read("/sys/devices/system/cpu/cpu4/cpu_capacity"))
        assert cap_big == 1024
        assert 0 < cap_little < cap_big

    def test_cpufreq_limits(self, raptor):
        max_p = int(raptor.sysfs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq"))
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        max_e = int(raptor.sysfs.read(f"/sys/devices/system/cpu/cpu{e_cpu}/cpufreq/cpuinfo_max_freq"))
        assert max_p == 5_100_000  # kHz
        assert max_e == 4_100_000

    def test_scaling_cur_freq_is_live(self, raptor):
        path = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"
        before = int(raptor.sysfs.read(path))
        from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
        t = raptor.machine.spawn_program(
            "w", [ComputePhase(1e9, constant_rates(PhaseRates(ipc=2.0)))], affinity={0}
        )
        raptor.machine.run_ticks(50)
        during = int(raptor.sysfs.read(path))
        assert during > before

    def test_midr_file_on_arm(self, orangepi):
        midr = orangepi.sysfs.read(
            "/sys/devices/system/cpu/cpu4/regs/identification/midr_el1"
        )
        assert int(midr, 16) == orangepi.machine.cpuid.midr(4).value

    def test_cache_sizes(self, raptor):
        l2_p = raptor.sysfs.read("/sys/devices/system/cpu/cpu0/cache/index2/size")
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        l2_e = raptor.sysfs.read(f"/sys/devices/system/cpu/cpu{e_cpu}/cache/index2/size")
        assert l2_p == "2048K" and l2_e == "1024K"

    def test_proposed_types_interface_absent_by_default(self, raptor):
        assert not raptor.sysfs.exists("/sys/devices/system/cpu/types")

    def test_proposed_types_interface_optional(self):
        system = System("raptor-lake-i7-13700", dt_s=1e-3, expose_cpu_types=True)
        text = system.sysfs.read("/sys/devices/system/cpu/types")
        assert "P-core" in text and "E-core" in text


class TestThermalAndPowercap:
    def test_thermal_zone(self, raptor):
        assert raptor.sysfs.read("/sys/class/thermal/thermal_zone9/type") == "x86_pkg_temp"
        temp = int(raptor.sysfs.read("/sys/class/thermal/thermal_zone9/temp"))
        assert temp == pytest.approx(25_000, abs=2000)

    def test_powercap_limits(self, raptor):
        base = "/sys/class/powercap/intel-rapl/intel-rapl:0"
        assert int(raptor.sysfs.read(f"{base}/constraint_0_power_limit_uw")) == 65_000_000
        assert int(raptor.sysfs.read(f"{base}/constraint_1_power_limit_uw")) == 219_000_000

    def test_energy_uj_advances(self, raptor):
        base = "/sys/class/powercap/intel-rapl/intel-rapl:0"
        before = int(raptor.sysfs.read(f"{base}/energy_uj"))
        raptor.machine.run_ticks(100)
        after = int(raptor.sysfs.read(f"{base}/energy_uj"))
        assert after > before

    def test_no_powercap_on_arm(self, orangepi):
        assert not orangepi.sysfs.exists(
            "/sys/class/powercap/intel-rapl/intel-rapl:0/energy_uj"
        )


class TestProcfs:
    def test_x86_cpuinfo_identical_fms(self, raptor):
        """The paper's pitfall: P and E report the same family/model."""
        text = raptor.procfs.read("/proc/cpuinfo")
        blocks = [b for b in text.split("\n\n") if b.strip()]
        assert len(blocks) == 24
        fms = set()
        for b in blocks:
            fam = model = step = None
            for line in b.splitlines():
                if line.startswith("cpu family"):
                    fam = line.split(":")[1].strip()
                elif line.startswith("model\t"):
                    model = line.split(":")[1].strip()
                elif line.startswith("stepping"):
                    step = line.split(":")[1].strip()
            fms.add((fam, model, step))
        assert len(fms) == 1

    def test_arm_cpuinfo_distinct_parts(self, orangepi):
        text = orangepi.procfs.read("/proc/cpuinfo")
        parts = [
            line.split(":")[1].strip()
            for line in text.splitlines()
            if line.startswith("CPU part")
        ]
        assert len(parts) == 6
        assert len(set(parts)) == 2

    def test_unknown_path(self, raptor):
        with pytest.raises(FileNotFoundError):
            raptor.procfs.read("/proc/meminfo")


class TestSyscallCost:
    def test_costs_charged_and_tallied(self, raptor):
        from repro.sim.task import Program, SimThread

        t = raptor.machine.spawn(SimThread("x", Program([])))
        stats0 = raptor.perf.cost.stats.snapshot()
        raptor.perf.cost.charge(t, "read")
        raptor.perf.cost.charge(None, "ioctl")
        d = raptor.perf.cost.stats.delta(stats0)
        assert d.calls == {"read": 1, "ioctl": 1}
        assert d.instructions_charged > 0
        # Charged to the thread as queued overhead work.
        assert len(t._injected) == 1

    def test_group_read_cheaper_than_two_reads(self):
        from repro.kernel.syscall_cost import SYSCALL_COST_INSTRUCTIONS as C

        assert C["read_group"] < 2 * C["read"]
        assert C["rdpmc"] < C["read"] / 10
