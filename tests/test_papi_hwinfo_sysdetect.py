"""Hardware info (§V-1) and the sysdetect strategies (§IV-B)."""

import pytest

from repro.papi import Papi, detect_core_types
from repro.papi.hwinfo import get_hardware_info
from repro.papi.sysdetect import (
    strategy_cpu_capacity,
    strategy_cpu_types_sysfs,
    strategy_cpuid,
    strategy_cpuinfo,
    strategy_max_freq,
    strategy_pmu_scan,
)
from repro.system import System


class TestHwInfo:
    def test_raptor_matches_table1(self, raptor):
        info = get_hardware_info(raptor)
        assert info.totalcpus == 24
        assert info.cores == 16
        assert info.threads == 2
        assert info.heterogeneous
        by_name = {c.name: c for c in info.core_classes}
        assert by_name["P-core"].n_physical_cores == 8
        assert by_name["P-core"].n_logical_cpus == 16
        assert by_name["P-core"].max_mhz == 5100
        assert by_name["E-core"].n_physical_cores == 8
        assert by_name["E-core"].max_mhz == 4100
        assert info.memory_gib == 32

    def test_orangepi_matches_table4(self, orangepi):
        info = get_hardware_info(orangepi)
        assert info.totalcpus == 6
        by_name = {c.name: c for c in info.core_classes}
        assert by_name["big"].n_physical_cores == 2
        assert by_name["big"].max_mhz == 1800
        assert by_name["LITTLE"].n_physical_cores == 4
        assert by_name["LITTLE"].max_mhz == 1400

    def test_homogeneous(self, xeon):
        info = get_hardware_info(xeon)
        assert not info.heterogeneous
        assert len(info.core_classes) == 1

    def test_class_of_cpu(self, raptor):
        info = get_hardware_info(raptor)
        assert info.class_of_cpu(0).name == "P-core"
        assert info.class_of_cpu(23).name == "E-core"
        with pytest.raises(KeyError):
            info.class_of_cpu(99)

    def test_via_papi_facade(self, raptor):
        assert Papi(raptor).get_hardware_info().heterogeneous


class TestStrategies:
    def test_cpu_capacity_arm_only(self, raptor, orangepi):
        assert not strategy_cpu_capacity(raptor).applicable
        r = strategy_cpu_capacity(orangepi)
        assert r.applicable and r.n_classes == 2

    def test_cpuinfo_pitfall_on_intel(self, raptor, orangepi):
        """/proc/cpuinfo cannot distinguish Intel hybrid core types."""
        r_intel = strategy_cpuinfo(raptor)
        assert r_intel.applicable and r_intel.n_classes == 1
        r_arm = strategy_cpuinfo(orangepi)
        assert r_arm.n_classes == 2

    def test_cpuid_x86_only(self, raptor, orangepi):
        r = strategy_cpuid(raptor)
        assert r.applicable
        assert sorted(r.classes) == ["atom", "core"]
        assert len(r.classes["atom"]) == 8
        assert not strategy_cpuid(orangepi).applicable

    def test_pmu_scan_everywhere(self, any_system):
        r = strategy_pmu_scan(any_system)
        assert r.applicable
        assert r.n_classes == len(any_system.topology.core_types)

    def test_max_freq_heuristic(self, raptor):
        r = strategy_max_freq(raptor)
        assert r.applicable and r.n_classes == 2

    def test_max_freq_heuristic_can_fail(self):
        """Two core types with identical max freq + L2 are conflated —
        'this cannot always be guaranteed to work'."""
        from repro.hw.coretype import CoreType, PowerCoefficients
        from repro.hw.machines import MachineSpec
        from repro.hw.topology import CpuTopology

        def twin(name, pmu, pfm, midr):
            return CoreType(
                name=name, microarch=pfm, vendor="arm", pmu_name=pmu,
                pfm_pmu=pfm, smt=1, capacity=1024 if name == "big" else 500,
                min_freq_mhz=500, base_freq_mhz=1000, max_freq_mhz=2000,
                ipc=2.0, flops_per_cycle=4.0, branch_misp_rate=0.01,
                llc_miss_penalty_cycles=150, l1d_kib=32, l2_kib=512,
                power=PowerCoefficients(0.5, 0.9, 0.1, 0.1), midr_part=midr,
            )

        spec = MachineSpec(
            name="twin-freq",
            topology=CpuTopology.build(
                [(twin("little", "pmu_a", "arm_a53", 0xD03), 2),
                 (twin("big", "pmu_b", "arm_a72", 0xD08), 2)]
            ),
            memory_gib=2, uncore_base_w=0.5, dram_w_per_util=0.2,
        )
        system = System(spec, dt_s=1e-3)
        r = strategy_max_freq(system)
        assert r.applicable and r.n_classes == 1  # wrongly conflated
        # But the PMU scan still gets it right.
        assert strategy_pmu_scan(system).n_classes == 2

    def test_proposed_interface_off_by_default(self, raptor):
        assert not strategy_cpu_types_sysfs(raptor).applicable

    def test_proposed_interface_when_exposed(self):
        system = System("raptor-lake-i7-13700", dt_s=1e-3, expose_cpu_types=True)
        r = strategy_cpu_types_sysfs(system)
        assert r.applicable and r.n_classes == 2


class TestConsensus:
    def test_consensus_partitions_cpus(self, any_system):
        report = detect_core_types(any_system)
        all_cpus = {c.cpu_id for c in any_system.topology.cores}
        covered = set()
        for cpus in report.consensus.values():
            assert not covered & set(cpus)
            covered |= set(cpus)
        assert covered == all_cpus

    def test_heterogeneity_detected_correctly(self, any_system):
        report = detect_core_types(any_system)
        assert report.heterogeneous == any_system.topology.is_heterogeneous

    def test_consensus_uses_kernel_pmu_names(self, raptor):
        report = detect_core_types(raptor)
        assert sorted(report.consensus) == ["cpu_atom", "cpu_core"]

    def test_three_tier_consensus(self, dynamiq):
        report = detect_core_types(dynamiq)
        assert len(report.consensus) == 3

    def test_by_strategy_lookup(self, raptor):
        report = detect_core_types(raptor)
        assert report.by_strategy("cpuid_leaf_1a").applicable
        with pytest.raises(KeyError):
            report.by_strategy("nope")
