"""pfmlib kernel-type resolution fallbacks and cross-machine behaviour."""

import pytest

from repro.hw.machines import orangepi_800
from repro.monitor import PerfStat
from repro.pfmlib import Pfmlib, PfmError
from repro.pfmlib.library import EventInfo
from repro.pfmlib.tables import ALL_TABLES
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestKernelTypeFallback:
    def test_canonical_name_resolved_by_cpus_scan(self, orangepi_acpi):
        """If software believes the PMU's canonical name but firmware
        renamed it, the perf-style /sys/devices/*/cpus scan still finds
        the right type number."""
        pfm = Pfmlib(orangepi_acpi)
        table = ALL_TABLES["arm_a72"]
        # Deliberately use the canonical (devicetree) name, absent here.
        info = EventInfo(
            pmu=table,
            linux_name="armv8_cortex_a72",
            event=table.event("INST_RETIRED"),
            umask="ANY",
        )
        assert not orangepi_acpi.sysfs.exists("/sys/devices/armv8_cortex_a72")
        ptype = pfm.kernel_pmu_type(info)
        pmu = orangepi_acpi.perf.registry.by_type[ptype]
        assert pmu.cpus == orangepi_acpi.topology.cpus_of_type("big")

    def test_unresolvable_pmu_errors(self, raptor):
        pfm = Pfmlib(raptor)
        table = ALL_TABLES["arm_a72"]
        info = EventInfo(
            pmu=table,
            linux_name="armv8_cortex_a72",
            event=table.event("INST_RETIRED"),
            umask="ANY",
        )
        with pytest.raises(PfmError, match="cannot resolve"):
            pfm.kernel_pmu_type(info)


class TestThreePmuPerfStat:
    def test_perf_stat_covers_three_core_types(self, dynamiq):
        """perf opens one event per PMU — three on a DynamIQ part."""
        mid_cpu = dynamiq.topology.cpus_of_type("big")[0]
        t = dynamiq.machine.spawn(
            SimThread("w", Program([ComputePhase(1e6, RATES)]), affinity={mid_cpu})
        )
        tool = PerfStat(dynamiq)
        tool.open_for_threads(["INST_RETIRED"], [t])
        tool.start()
        dynamiq.machine.run_until_done([t], max_s=5)
        result = tool.stop()
        tool.close()
        by_pmu = result.by_pmu("INST_RETIRED")
        assert set(by_pmu) == {"arm_x1", "arm_a76", "arm_a55"}
        assert by_pmu["arm_a76"] == pytest.approx(1e6)
        assert by_pmu["arm_x1"] == by_pmu["arm_a55"] == 0


class TestFirmwareMatrix:
    @pytest.mark.parametrize("firmware", ["devicetree", "acpi"])
    def test_full_stack_works_under_either_firmware(self, firmware):
        from repro.papi import Papi

        system = System(orangepi_800(firmware=firmware), dt_s=1e-4)
        papi = Papi(system)
        big_cpu = system.topology.cpus_of_type("big")[0]
        t = system.machine.spawn(
            SimThread("w", Program([ComputePhase(1e6, RATES)]), affinity={big_cpu})
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        system.machine.run_until_done([t], max_s=5)
        assert papi.stop(es)[0] == pytest.approx(1e6)
