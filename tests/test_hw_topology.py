"""Unit tests for CPU topology construction and queries."""

import pytest

from repro.hw.machines import (
    dynamiq_three_tier,
    homogeneous_xeon,
    orangepi_800,
    raptor_lake_i7_13700,
)


@pytest.fixture
def raptor_topo():
    return raptor_lake_i7_13700().topology


def test_raptor_layout_matches_table1(raptor_topo):
    """Table I: 8 P-cores (16 threads) + 8 E-cores = 24 logical CPUs."""
    assert raptor_topo.n_cpus == 24
    assert raptor_topo.n_physical_cores == 16
    assert len(raptor_topo.cpus_of_type("P-core")) == 16
    assert len(raptor_topo.cpus_of_type("E-core")) == 8


def test_raptor_smt_siblings(raptor_topo):
    # P-core threads are adjacent pairs (cpu0/cpu1 share a core).
    assert raptor_topo.smt_siblings(0) == [1]
    assert raptor_topo.smt_siblings(1) == [0]
    # E-cores have no siblings.
    e_cpu = raptor_topo.cpus_of_type("E-core")[0]
    assert raptor_topo.smt_siblings(e_cpu) == []


def test_primary_threads_one_per_physical_core(raptor_topo):
    primary = raptor_topo.primary_threads()
    assert len(primary) == 16
    phys = {raptor_topo.core(c).phys_core for c in primary}
    assert len(phys) == 16


def test_orangepi_layout_matches_table4():
    """Table IV: 2 A72 big + 4 A53 LITTLE; RK3399 numbers LITTLE first."""
    topo = orangepi_800().topology
    assert topo.n_cpus == 6
    assert topo.cpus_of_type("LITTLE") == [0, 1, 2, 3]
    assert topo.cpus_of_type("big") == [4, 5]


def test_heterogeneity_flags():
    assert raptor_lake_i7_13700().topology.is_heterogeneous
    assert orangepi_800().topology.is_heterogeneous
    assert dynamiq_three_tier().topology.is_heterogeneous
    assert not homogeneous_xeon().topology.is_heterogeneous


def test_three_tier_has_three_core_types():
    topo = dynamiq_three_tier().topology
    assert len(topo.core_types) == 3


def test_capacity_scaling():
    """The biggest core type normalizes to 1024, like Linux cpu_capacity."""
    topo = orangepi_800().topology
    big = topo.cpus_of_type("big")[0]
    little = topo.cpus_of_type("LITTLE")[0]
    assert topo.capacity_of(big) == 1024
    assert 0 < topo.capacity_of(little) < 1024


def test_cpus_of_pmu(raptor_topo):
    assert raptor_topo.cpus_of_pmu("cpu_core") == raptor_topo.cpus_of_type("P-core")
    assert raptor_topo.cpus_of_pmu("cpu_atom") == raptor_topo.cpus_of_type("E-core")


def test_core_lookup_and_iteration(raptor_topo):
    assert raptor_topo.core(0).cpu_id == 0
    assert len(list(raptor_topo)) == len(raptor_topo) == 24
    with pytest.raises(KeyError):
        raptor_topo.core(99)
