"""perf_event_open validation rules, mirroring Linux hybrid semantics."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf import PerfEventAttr, PerfType
from repro.kernel.perf.attr import HwConfig, PERF_PMU_TYPE_SHIFT, SwConfig
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


@pytest.fixture
def raptor_thread(raptor):
    return raptor.machine.spawn(SimThread("app", Program([ComputePhase(1e6, RATES)])))


def _glc(raptor):
    return raptor.perf.registry.by_name["cpu_core"]


def _grt(raptor):
    return raptor.perf.registry.by_name["cpu_atom"]


class TestPmuRegistry:
    def test_one_pmu_per_core_type(self, raptor):
        names = set(raptor.perf.registry.by_name)
        assert {"cpu_core", "cpu_atom", "software", "uncore_llc", "power"} <= names

    def test_three_cpu_pmus_on_dynamiq(self, dynamiq):
        cpu_pmus = dynamiq.perf.registry.cpu_pmus()
        assert len(cpu_pmus) == 3

    def test_no_rapl_pmu_on_arm(self, orangepi):
        assert "power" not in orangepi.perf.registry.by_name

    def test_default_cpu_pmu_is_boot_cpu(self, raptor, orangepi):
        # Raptor Lake: cpu0 is a P-core.
        assert raptor.perf.registry.default_cpu_pmu().name == "cpu_core"
        # RK3399: cpu0 is a LITTLE core.
        assert orangepi.perf.registry.default_cpu_pmu().name == "armv8_cortex_a53"

    def test_topdown_decoded_only_by_pcore_pmu(self, raptor):
        assert _glc(raptor).decodes(0x0400)
        assert not _grt(raptor).decodes(0x0400)


class TestOpenValidation:
    def test_open_thread_event(self, raptor, raptor_thread):
        attr = PerfEventAttr(type=_glc(raptor).type, config=0x00C0)
        fd = raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert fd >= 3

    def test_unknown_pmu_type_enoent(self, raptor, raptor_thread):
        attr = PerfEventAttr(type=999, config=0x00C0)
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert e.value.kernel_errno == Errno.ENOENT

    def test_bad_config_einval(self, raptor, raptor_thread):
        attr = PerfEventAttr(type=_glc(raptor).type, config=0xDEAD)
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert e.value.kernel_errno == Errno.EINVAL

    def test_topdown_on_ecore_pmu_rejected(self, raptor, raptor_thread):
        """The paper's example event that simply does not exist on E-cores."""
        attr = PerfEventAttr(type=_grt(raptor).type, config=0x0400)
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert e.value.kernel_errno == Errno.EINVAL

    def test_no_such_thread_esrch(self, raptor):
        attr = PerfEventAttr(type=_glc(raptor).type, config=0x00C0)
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=4242, cpu=-1)
        assert e.value.kernel_errno == Errno.ESRCH

    def test_pid_minus1_needs_cpu(self, raptor):
        attr = PerfEventAttr(type=_glc(raptor).type, config=0x00C0)
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=-1, cpu=-1)
        assert e.value.kernel_errno == Errno.EINVAL

    def test_cpu_wide_on_foreign_core_type_rejected(self, raptor):
        """A cpu_core event bound to an E-core CPU fails."""
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        attr = PerfEventAttr(type=_glc(raptor).type, config=0x00C0)
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=-1, cpu=e_cpu)
        assert e.value.kernel_errno == Errno.EINVAL

    def test_cpu_wide_on_matching_core_ok(self, raptor):
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        attr = PerfEventAttr(type=_grt(raptor).type, config=0x00C0)
        assert raptor.perf.perf_event_open(attr, pid=-1, cpu=e_cpu) >= 3


class TestGenericHardwareEvents:
    def test_plain_hardware_defaults_to_boot_pmu(self, raptor, raptor_thread):
        attr = PerfEventAttr(type=PerfType.HARDWARE, config=HwConfig.INSTRUCTIONS)
        fd = raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert raptor.perf._event(fd).pmu.name == "cpu_core"

    def test_extended_encoding_selects_pmu(self, raptor, raptor_thread):
        """Hybrid kernels take the PMU in config's high bits."""
        grt_type = _grt(raptor).type
        attr = PerfEventAttr(
            type=PerfType.HARDWARE,
            config=(grt_type << PERF_PMU_TYPE_SHIFT) | HwConfig.INSTRUCTIONS,
        )
        fd = raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert raptor.perf._event(fd).pmu.name == "cpu_atom"

    def test_extended_encoding_bad_pmu(self, raptor, raptor_thread):
        attr = PerfEventAttr(
            type=PerfType.HARDWARE,
            config=(77 << PERF_PMU_TYPE_SHIFT) | HwConfig.INSTRUCTIONS,
        )
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)
        assert e.value.kernel_errno == Errno.ENOENT

    def test_unknown_generic_id(self, raptor, raptor_thread):
        attr = PerfEventAttr(type=PerfType.HARDWARE, config=0x55)
        with pytest.raises(KernelError):
            raptor.perf.perf_event_open(attr, pid=raptor_thread.tid, cpu=-1)


class TestGroups:
    def test_same_pmu_grouping_ok(self, raptor, raptor_thread):
        glc = _glc(raptor).type
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=glc, config=0x00C0), pid=raptor_thread.tid, cpu=-1
        )
        sibling = raptor.perf.perf_event_open(
            PerfEventAttr(type=glc, config=0x003C),
            pid=raptor_thread.tid,
            cpu=-1,
            group_fd=leader,
        )
        assert sibling >= 3

    def test_cross_pmu_grouping_einval(self, raptor, raptor_thread):
        """The kernel rule that forces PAPI into one group per PMU."""
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=_glc(raptor).type, config=0x00C0),
            pid=raptor_thread.tid,
            cpu=-1,
        )
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(
                PerfEventAttr(type=_grt(raptor).type, config=0x00C0),
                pid=raptor_thread.tid,
                cpu=-1,
                group_fd=leader,
            )
        assert e.value.kernel_errno == Errno.EINVAL
        assert "cannot span PMUs" in str(e.value)

    def test_software_event_may_join_hw_group(self, raptor, raptor_thread):
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=_glc(raptor).type, config=0x00C0),
            pid=raptor_thread.tid,
            cpu=-1,
        )
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=PerfType.SOFTWARE, config=SwConfig.CONTEXT_SWITCHES),
            pid=raptor_thread.tid,
            cpu=-1,
            group_fd=leader,
        )
        assert fd >= 3

    def test_bad_group_fd(self, raptor, raptor_thread):
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(
                PerfEventAttr(type=_glc(raptor).type, config=0x00C0),
                pid=raptor_thread.tid,
                cpu=-1,
                group_fd=555,
            )
        assert e.value.kernel_errno == Errno.EBADF

    def test_group_must_share_target(self, raptor, raptor_thread):
        other = raptor.machine.spawn(SimThread("other", Program([ComputePhase(1e5, RATES)])))
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=_glc(raptor).type, config=0x00C0),
            pid=raptor_thread.tid,
            cpu=-1,
        )
        with pytest.raises(KernelError):
            raptor.perf.perf_event_open(
                PerfEventAttr(type=_glc(raptor).type, config=0x003C),
                pid=other.tid,
                cpu=-1,
                group_fd=leader,
            )

    def test_group_capacity_limit(self, raptor, raptor_thread):
        """A group larger than the PMU's counters is rejected."""
        glc = _glc(raptor)
        # Duplicate configs are fine: each open consumes one counter.
        configs = [0x00C0, 0x003C, 0x013C, 0x4F2E, 0x412E, 0x00C4, 0x00C5,
                   0x01C7, 0x01A3, 0x0400, 0x1F24, 0x3F24, 0x00C0, 0x003C]
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=glc.type, config=configs[0]),
            pid=raptor_thread.tid,
            cpu=-1,
        )
        opened = 1
        with pytest.raises(KernelError) as e:
            for cfg in configs[1:]:
                raptor.perf.perf_event_open(
                    PerfEventAttr(type=glc.type, config=cfg),
                    pid=raptor_thread.tid,
                    cpu=-1,
                    group_fd=leader,
                )
                opened += 1
        assert e.value.kernel_errno == Errno.EINVAL
        assert opened == glc.n_counters + glc.n_fixed


class TestFdLifecycle:
    def test_close_then_read_ebadf(self, raptor, raptor_thread):
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=_glc(raptor).type, config=0x00C0),
            pid=raptor_thread.tid,
            cpu=-1,
        )
        raptor.perf.close(fd)
        with pytest.raises(KernelError) as e:
            raptor.perf.read(fd)
        assert e.value.kernel_errno == Errno.EBADF

    def test_double_close(self, raptor, raptor_thread):
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=_glc(raptor).type, config=0x00C0),
            pid=raptor_thread.tid,
            cpu=-1,
        )
        raptor.perf.close(fd)
        with pytest.raises(KernelError):
            raptor.perf.close(fd)
