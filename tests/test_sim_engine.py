"""Unit tests for the simulation engine, threads and phases."""

import pytest

from repro.hw.coretype import ArchEvent
from repro.sim.clock import SimClock
from repro.sim.task import ControlOp, Program, SimThread, ThreadState
from repro.sim.workload import (
    ComputePhase,
    PhaseRates,
    SleepPhase,
    SpinBarrier,
    SpinPhase,
    constant_rates,
)

RATES = constant_rates(PhaseRates(ipc=2.0, flops_per_instr=4.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5))


class TestClock:
    def test_advance(self):
        c = SimClock(0.5)
        assert c.now_s == 0.0
        c.advance()
        c.advance()
        assert c.now_s == 1.0

    def test_positive_dt_required(self):
        with pytest.raises(ValueError):
            SimClock(0.0)


class TestPhases:
    def test_compute_phase_validates(self):
        with pytest.raises(ValueError):
            ComputePhase(0, RATES)

    def test_phase_rates_validates(self):
        with pytest.raises(ValueError):
            PhaseRates(ipc=0.0)

    def test_sleep_needs_condition_or_duration(self):
        with pytest.raises(ValueError):
            SleepPhase()

    def test_barrier_generations(self):
        b = SpinBarrier(parties=2)
        b.arrive()
        assert b.generation == 0
        b.arrive()
        assert b.generation == 1

    def test_barrier_wait_phase_kinds(self):
        spin = SpinBarrier(2, spin=True).wait_phase()
        sleep = SpinBarrier(2, spin=False).wait_phase()
        assert isinstance(spin, SpinPhase)
        assert isinstance(sleep, SleepPhase)


class TestExecution:
    def test_instruction_conservation(self, raptor):
        """Exactly the requested instructions retire — the bedrock of
        every counting test above this layer."""
        t = raptor.machine.spawn_program("w", [ComputePhase(12_345_678, RATES)])
        assert raptor.machine.run_until_done([t], max_s=10)
        assert t.counters_total()[ArchEvent.INSTRUCTIONS] == pytest.approx(12_345_678)

    def test_derived_counters_consistent(self, raptor):
        t = raptor.machine.spawn_program("w", [ComputePhase(1e7, RATES)])
        raptor.machine.run_until_done([t], max_s=10)
        totals = t.counters_total()
        assert totals[ArchEvent.FP_OPS] == pytest.approx(4e7, rel=1e-6)
        assert totals[ArchEvent.LLC_REFERENCES] == pytest.approx(1e5, rel=1e-6)
        assert totals[ArchEvent.LLC_MISSES] == pytest.approx(5e4, rel=1e-6)
        # IPC 2.0: cycles = instructions / 2.
        assert totals[ArchEvent.CYCLES] == pytest.approx(5e6, rel=1e-6)

    def test_unpinned_thread_prefers_biggest_core(self, raptor):
        t = raptor.machine.spawn_program("w", [ComputePhase(1e6, RATES)])
        raptor.machine.run_until_done([t], max_s=10)
        assert set(t.counters) == {"cpu_core"}

    def test_affinity_respected(self, raptor):
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        t = raptor.machine.spawn_program("w", [ComputePhase(1e6, RATES)], affinity={e_cpu})
        raptor.machine.run_until_done([t], max_s=10)
        assert set(t.counters) == {"cpu_atom"}

    def test_topdown_only_counted_on_pcores(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        tp = raptor.machine.spawn_program("p", [ComputePhase(1e6, RATES)], affinity={p_cpu})
        te = raptor.machine.spawn_program("e", [ComputePhase(1e6, RATES)], affinity={e_cpu})
        raptor.machine.run_until_done([tp, te], max_s=10)
        assert tp.counters["cpu_core"][ArchEvent.TOPDOWN_SLOTS] > 0
        assert te.counters["cpu_atom"][ArchEvent.TOPDOWN_SLOTS] == 0

    def test_control_ops_run_at_boundaries(self, raptor):
        seen = []
        t = raptor.machine.spawn_program(
            "w",
            [
                ControlOp(lambda th: seen.append("before")),
                ComputePhase(1e5, RATES),
                ControlOp(lambda th: seen.append("after")),
            ],
        )
        raptor.machine.run_until_done([t], max_s=10)
        assert seen == ["before", "after"]

    def test_overhead_injection(self, raptor):
        t = raptor.machine.spawn_program(
            "w",
            [
                ControlOp(lambda th: th.inject_overhead(50_000)),
                ComputePhase(1e5, RATES),
            ],
        )
        raptor.machine.run_until_done([t], max_s=10)
        assert t.counters_total()[ArchEvent.INSTRUCTIONS] == pytest.approx(150_000)

    def test_sleep_for_duration(self, raptor):
        t = raptor.machine.spawn_program(
            "w", [SleepPhase(duration_s=0.005), ComputePhase(1e5, RATES)]
        )
        raptor.machine.run_until_done([t], max_s=10)
        assert raptor.machine.now_s >= 0.005
        assert t.done

    def test_spin_until_condition(self, raptor):
        flag = {"go": False}
        waiter = raptor.machine.spawn_program(
            "waiter", [SpinPhase(until=lambda: flag["go"]), ComputePhase(1e5, RATES)]
        )
        raptor.machine.spawn_program(
            "setter",
            [ComputePhase(2e6, RATES), ControlOp(lambda th: flag.update(go=True))],
        )
        raptor.machine.run_until_done(max_s=10)
        assert waiter.done
        assert waiter.spin_time_s > 0

    def test_two_threads_barrier_sync(self, raptor):
        b = SpinBarrier(2)
        def mk():
            return [
                ComputePhase(1e6, RATES, on_complete=lambda th: b.arrive()),
                b.wait_phase(),
                ComputePhase(1e5, RATES),
            ]
        t1 = raptor.machine.spawn_program("a", mk())
        t2 = raptor.machine.spawn_program("b", mk())
        assert raptor.machine.run_until_done([t1, t2], max_s=10)
        assert b.generation == 1

    def test_timeshare_when_oversubscribed(self, raptor):
        cpu = raptor.topology.cpus_of_type("P-core")[0]
        ts = [
            raptor.machine.spawn_program(f"w{i}", [ComputePhase(1e6, RATES)], affinity={cpu})
            for i in range(3)
        ]
        raptor.machine.run_until_done(ts, max_s=10)
        for t in ts:
            assert t.counters_total()[ArchEvent.INSTRUCTIONS] == pytest.approx(1e6)

    def test_run_until_timeout(self, raptor):
        raptor.machine.spawn_program("w", [SpinPhase(until=lambda: False)])
        assert not raptor.machine.run_until_done(max_s=0.01)

    def test_cool_down(self, raptor_coarse):
        m = raptor_coarse.machine
        m.thermal.temp_c = 60.0
        assert m.cool_down(35.0, max_s=600)
        assert m.thermal.temp_c <= 35.0

    def test_vruntime_and_switches_tracked(self, raptor):
        cpu = raptor.topology.cpus_of_type("P-core")[0]
        t1 = raptor.machine.spawn_program("a", [ComputePhase(1e6, RATES)], affinity={cpu})
        t2 = raptor.machine.spawn_program("b", [ComputePhase(1e6, RATES)], affinity={cpu})
        raptor.machine.run_until_done([t1, t2], max_s=10)
        assert t1.vruntime > 0 and t2.vruntime > 0
        assert t1.nr_switches > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        from repro.system import System

        def run(seed):
            s = System("raptor-lake-i7-13700", dt_s=1e-4, seed=seed,
                       migrate_jitter=0.1, rebalance_jitter=0.1)
            t = s.machine.spawn_program("w", [ComputePhase(5e6, RATES)])
            s.machine.run_until_done([t], max_s=10)
            return {k: v[ArchEvent.INSTRUCTIONS] for k, v in t.counters.items()}

        assert run(3) == run(3)

    def test_jitter_migrates_across_core_types(self):
        from repro.system import System

        s = System("raptor-lake-i7-13700", dt_s=1e-4, seed=1,
                   migrate_jitter=0.2, rebalance_jitter=0.2)
        t = s.machine.spawn_program("w", [ComputePhase(5e7, RATES)])
        s.machine.run_until_done([t], max_s=10)
        assert t.nr_migrations > 0
        assert set(t.counters) == {"cpu_core", "cpu_atom"}
        # Conservation across migrations.
        assert t.counters_total()[ArchEvent.INSTRUCTIONS] == pytest.approx(5e7)
