"""HPL scaling properties across core counts and block sizes."""

import pytest

from repro.hpl import HplConfig, run_hpl
from repro.system import System

CFG = HplConfig(n=9216, nb=192)


def _run(variant, cpus, config=CFG):
    system = System("raptor-lake-i7-13700", dt_s=0.01)
    return run_hpl(system, config, variant=variant, cpus=cpus)


def _pcores(n):
    system = System("raptor-lake-i7-13700")
    p = [c for c in system.topology.primary_threads()
         if system.topology.core(c).ctype.name == "P-core"]
    return p[:n]


def _ecores(n):
    system = System("raptor-lake-i7-13700")
    e = [c for c in system.topology.primary_threads()
         if system.topology.core(c).ctype.name == "E-core"]
    return e[:n]


class TestCoreScaling:
    def test_intel_scales_with_pcores(self):
        """More P-cores, shorter wall time (intel variant, dynamic)."""
        times = [
            _run("intel", _pcores(n)).wall_s for n in (2, 4, 8)
        ]
        assert times[0] > times[1] > times[2]

    def test_intel_gains_from_adding_ecores(self):
        base = _run("intel", _pcores(8))
        more = _run("intel", _pcores(8) + _ecores(8))
        assert more.wall_s < base.wall_s

    def test_openblas_loses_from_adding_ecores(self):
        """Table II's regression.  It only appears once the run lives in
        the power-capped steady state (the PL1 budget is what makes the
        E-core stragglers expensive), so this test uses a longer run."""
        cfg = HplConfig(n=23040, nb=192)

        def run(cpus):
            system = System("raptor-lake-i7-13700", dt_s=0.02)
            return run_hpl(system, cfg, variant="openblas", cpus=cpus)

        base = run(_pcores(8))
        more = run(_pcores(8) + _ecores(8))
        assert more.wall_s > base.wall_s

    def test_speedup_is_sublinear(self):
        """4x the P-cores gives less than 4x throughput (power budget)."""
        g2 = _run("intel", _pcores(2)).gflops
        g8 = _run("intel", _pcores(8)).gflops
        assert 1.5 < g8 / g2 < 4.0


class TestBlockSizeEffect:
    def test_larger_blocks_beat_tiny_blocks(self):
        small = _run("openblas", _pcores(8), HplConfig(n=9216, nb=64))
        large = _run("openblas", _pcores(8), HplConfig(n=9216, nb=192))
        assert large.gflops > small.gflops * 1.1

    def test_llc_traffic_scales_inversely_with_nb(self):
        small = _run("openblas", _pcores(8), HplConfig(n=9216, nb=64))
        large = _run("openblas", _pcores(8), HplConfig(n=9216, nb=192))
        assert small.llc_references["cpu_core"] > 2 * large.llc_references["cpu_core"]


class TestErrorStrings:
    def test_papi_error_includes_code_name(self):
        from repro.papi import Papi, PapiError

        papi = Papi(System("raptor-lake-i7-13700"))
        with pytest.raises(PapiError) as e:
            papi.start(123)
        assert "PAPI_ENOEVST" in str(e.value)

    def test_kernel_error_includes_errno_name(self, raptor):
        from repro.kernel.errno import KernelError
        from repro.kernel.perf import PerfEventAttr

        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(
                PerfEventAttr(type=999, config=0), pid=-1, cpu=0
            )
        assert "[ENOENT]" in str(e.value)
