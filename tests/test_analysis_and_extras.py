"""Derived metrics, the papi_cost tool, and the Alder Lake preset."""

import pytest

from repro.analysis import breakdown_eventset, gflops, ipc, miss_rate
from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System
from repro.tools import papi_cost

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestMetrics:
    def test_ipc(self):
        assert ipc(2e6, 1e6) == 2.0
        assert ipc(1.0, 0.0) == 0.0

    def test_miss_rate(self):
        assert miss_rate(50, 100) == 0.5
        assert miss_rate(0, 0) == 0.0
        assert miss_rate(200, 100) == 1.0  # clamped
        with pytest.raises(ValueError):
            miss_rate(-1, 100)

    def test_gflops(self):
        assert gflops(2e9, 1.0) == 2.0
        assert gflops(1e9, 0.0) == 0.0

    def test_breakdown_splits_derived_preset(self):
        system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=6,
                        migrate_jitter=0.1, rebalance_jitter=0.1)
        papi = Papi(system)
        t = system.machine.spawn(
            SimThread("app", Program([ComputePhase(2e7, RATES)]))
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        system.machine.run_until_done([t], max_s=10)
        bd = breakdown_eventset(papi, es)
        assert bd.total("PAPI_TOT_INS") == pytest.approx(2e7, rel=1e-6)
        shares = bd.entries["PAPI_TOT_INS"]
        assert set(shares) == {"adl_glc", "adl_grt"}
        assert bd.share("PAPI_TOT_INS", "adl_glc") + bd.share(
            "PAPI_TOT_INS", "adl_grt"
        ) == pytest.approx(1.0)

    def test_breakdown_requires_perf_eventset(self, raptor):
        papi = Papi(raptor, mode="legacy")
        es = papi.create_eventset()
        papi.add_event(es, "rapl::RAPL_ENERGY_PKG")
        with pytest.raises(TypeError):
            breakdown_eventset(papi, es)


class TestPapiCostTool:
    def test_hybrid_costs_scale_with_pmus(self, capsys):
        assert papi_cost.main(["--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "1 PMU" in out and "2 PMUs" in out
        # Parse the read rows and compare syscalls/op.
        rows = {}
        for line in out.splitlines():
            parts = line.split()
            if len(parts) >= 4 and parts[-3] == "read":
                # e.g. "2 PMUs   read   2.0   6800"
                label = " ".join(parts[:-3])
                rows[label] = float(parts[-2])
        assert rows["2 PMUs"] == 2 * rows["1 PMU"]

    def test_homogeneous_machine(self, capsys):
        assert papi_cost.main(
            ["--machine", "xeon-homogeneous", "--iterations", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 PMUs" not in out


class TestAlderLakePreset:
    def test_topology(self):
        system = System("alder-lake-i5-12600k")
        assert system.topology.n_cpus == 16  # 6*2 + 4
        assert len(system.topology.cpus_of_type("P-core")) == 12
        assert len(system.topology.cpus_of_type("E-core")) == 4

    def test_hybrid_eventset_works(self):
        system = System("alder-lake-i5-12600k", dt_s=1e-4)
        papi = Papi(system)
        e_cpu = system.topology.cpus_of_type("E-core")[0]
        t = system.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={e_cpu})
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        system.machine.run_until_done([t], max_s=5)
        assert papi.stop(es)[0] == pytest.approx(1e6)

    def test_detection(self):
        from repro.papi import detect_core_types

        report = detect_core_types(System("alder-lake-i5-12600k"))
        assert report.heterogeneous
        assert {len(v) for v in report.consensus.values()} == {12, 4}
