"""Rule-based stateful test of the PAPI EventSet lifecycle.

Hypothesis drives random sequences of create/attach/add/start/read/
stop/reset/cleanup/destroy against one PAPI instance and checks that the
library either performs the operation or raises a *well-formed*
PapiError — never crashes, never corrupts the EventSet table, and obeys
the state-machine invariants (counting only between start and stop,
values never negative, one running EventSet per component per thread).
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.papi import Papi, PapiError
from repro.papi.consts import PapiState
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, SpinPhase, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))

EVENT_CHOICES = [
    "adl_glc::INST_RETIRED:ANY",
    "adl_grt::INST_RETIRED:ANY",
    "adl_glc::CPU_CLK_UNHALTED:THREAD",
    "PAPI_TOT_INS",
    "PAPI_L3_TCM",
    "uncore_llc::LLC_MISSES",
    "rapl::RAPL_ENERGY_PKG",
]


class PapiLifecycle(RuleBasedStateMachine):
    eventsets = Bundle("eventsets")

    @initialize()
    def boot(self):
        self.system = System("raptor-lake-i7-13700", dt_s=1e-4)
        self.papi = Papi(self.system, mode="hybrid")
        # One long-lived measurable thread, kept runnable with spin work.
        self.thread = self.system.machine.spawn(
            SimThread("target", Program([SpinPhase(until=lambda: False)]))
        )
        self.destroyed: set[int] = set()

    def _ok(self, fn, *args, **kw):
        """Run an operation; only PapiError is an acceptable failure."""
        try:
            return fn(*args, **kw)
        except PapiError:
            return None

    @rule(target=eventsets)
    def create(self):
        return self.papi.create_eventset()

    @rule(es=eventsets)
    def attach(self, es):
        if es in self.destroyed:
            return
        self._ok(self.papi.attach, es, self.thread)

    @rule(es=eventsets, name=st.sampled_from(EVENT_CHOICES))
    def add_event(self, es, name):
        if es in self.destroyed:
            return
        self._ok(self.papi.add_event, es, name)

    @rule(es=eventsets)
    def start(self, es):
        if es in self.destroyed:
            return
        self._ok(self.papi.start, es)

    @rule(es=eventsets)
    def read(self, es):
        if es in self.destroyed:
            return
        values = self._ok(self.papi.read, es)
        if values is not None:
            assert all(v >= 0 for v in values)
            assert len(values) == self.papi.eventset(es).num_events

    @rule(es=eventsets)
    def stop(self, es):
        if es in self.destroyed:
            return
        values = self._ok(self.papi.stop, es)
        if values is not None:
            assert all(v >= 0 for v in values)

    @rule(es=eventsets)
    def reset(self, es):
        if es in self.destroyed:
            return
        self._ok(self.papi.reset, es)

    @rule(es=eventsets)
    def cleanup(self, es):
        if es in self.destroyed:
            return
        self._ok(self.papi.cleanup_eventset, es)

    @rule(es=eventsets)
    def destroy(self, es):
        if es in self.destroyed:
            return
        if self._ok(self.papi.destroy_eventset, es) is not None or True:
            try:
                self.papi.eventset(es)
            except PapiError:
                self.destroyed.add(es)

    @rule(ticks=st.integers(min_value=1, max_value=50))
    def run_machine(self, ticks):
        self.system.machine.run_ticks(ticks)

    @invariant()
    def running_sets_are_consistent(self):
        if not hasattr(self, "papi"):
            return
        for es in self.papi._eventsets.values():
            if es.state is PapiState.RUNNING:
                assert es.entries, "a running EventSet must have events"
                assert es.component is not None
        # At most one running EventSet per component per thread context.
        for comp in self.papi.components:
            seen = {}
            for es in self.papi._eventsets.values():
                if es.state is PapiState.RUNNING and es.component is comp:
                    key = es.attached.tid if es.attached else None
                    assert key not in seen, (
                        f"two running EventSets ({seen[key]}, {es.esid}) in "
                        f"one context of {comp.name}"
                    )
                    seen[key] = es.esid

    @invariant()
    def fd_table_clean(self):
        if not hasattr(self, "system"):
            return
        # Every tracked kernel event is open exactly once in the fd table.
        fds = self.system.perf._fds
        assert len(set(map(id, fds.values()))) == len(fds)


PapiLifecycle.TestCase.settings = settings(
    max_examples=30,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestPapiLifecycle = PapiLifecycle.TestCase
