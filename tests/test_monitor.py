"""Unit tests for the monitoring tools (sampler, perf stat, aggregation)."""

import numpy as np
import pytest

from repro.hpl import HplConfig, run_hpl
from repro.monitor import (
    PerfStat,
    Sampler,
    aggregate_traces,
    monitored_run,
    perf_stat_threads,
)
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.4))


class TestSampler:
    def test_samples_at_period(self):
        system = System("raptor-lake-i7-13700", dt_s=0.01)
        sampler = Sampler(system, period_s=0.1)
        sampler.start()
        system.machine.run_for(1.05)
        trace = sampler.stop()
        assert 10 <= len(trace.times_s) <= 12
        dt = np.diff(trace.times_s)
        assert np.allclose(dt, 0.1, atol=0.02)

    def test_trace_contents(self):
        system = System("raptor-lake-i7-13700", dt_s=0.01)
        t = system.machine.spawn_program("w", [ComputePhase(5e9, RATES)])
        sampler = Sampler(system, period_s=0.05)
        sampler.start()
        system.machine.run_for(0.5)
        trace = sampler.stop()
        assert set(trace.freq_mhz) == {"P-core", "E-core"}
        assert all(p > 0 for p in trace.package_w)
        assert trace.energy_j[-1] > trace.energy_j[0]
        arrays = trace.as_arrays()
        assert "freq_P-core_mhz" in arrays

    def test_monitored_run_settles_first(self):
        system = System("raptor-lake-i7-13700", dt_s=0.01)
        system.machine.thermal.temp_c = 55.0

        def body():
            t = system.machine.spawn_program("w", [ComputePhase(1e8, RATES)])
            system.machine.run_until_done([t], max_s=5)
            return t

        _, trace = monitored_run(system, body, period_s=0.01, settle_temp_c=35.0)
        assert trace.temp_c[0] <= 36.0

    def test_summary_helpers(self):
        system = System("raptor-lake-i7-13700", dt_s=0.01)
        sampler = Sampler(system, period_s=0.05)
        sampler.start()
        system.machine.run_for(0.3)
        trace = sampler.stop()
        assert trace.peak_power_w() >= trace.steady_power_w() * 0.5
        assert trace.median_freq_ghz("P-core") > 0
        with pytest.raises(KeyError):
            trace.median_freq_ghz("nope")


class TestPerfStat:
    def test_per_thread_hybrid_events(self):
        system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=5,
                        migrate_jitter=0.1, rebalance_jitter=0.1)
        t = system.machine.spawn(SimThread("w", Program([ComputePhase(2e7, RATES)])))
        result = perf_stat_threads(
            system,
            [t],
            ["INST_RETIRED"],
            lambda: system.machine.run_until_done([t], max_s=10),
        )
        by_pmu = result.by_pmu("INST_RETIRED")
        assert set(by_pmu) == {"adl_glc", "adl_grt"}
        assert sum(by_pmu.values()) == pytest.approx(2e7, rel=0.01)
        assert "INST_RETIRED" in result.render()

    def test_system_wide_llc_missrate(self):
        """The Table III measurement path: system-wide per-PMU counts."""
        system = System("raptor-lake-i7-13700", dt_s=1e-4)
        p_cpu = system.topology.cpus_of_type("P-core")[0]
        tool = PerfStat(system)
        tool.open_system_wide(["LONGEST_LAT_CACHE:REFERENCE", "LONGEST_LAT_CACHE:MISS"])
        tool.start()
        t = system.machine.spawn(
            SimThread("w", Program([ComputePhase(1e7, RATES)]), affinity={p_cpu})
        )
        system.machine.run_until_done([t], max_s=10)
        result = tool.stop()
        tool.close()
        refs = result.by_pmu("LONGEST_LAT_CACHE:REFERENCE")
        misses = result.by_pmu("LONGEST_LAT_CACHE:MISS")
        assert refs["adl_glc"] == pytest.approx(1e5, rel=0.01)
        assert misses["adl_glc"] / refs["adl_glc"] == pytest.approx(0.4, rel=0.01)
        assert refs["adl_grt"] == 0


class TestAggregation:
    def _trace(self, length, level):
        from repro.monitor.sampler import SampleTrace

        tr = SampleTrace(period_s=1.0)
        tr.times_s = list(np.arange(length, dtype=float))
        tr.freq_mhz["P-core"] = [level] * length
        tr.temp_c = [40.0 + level / 1000] * length
        tr.package_w = [level / 50] * length
        tr.energy_j = list(np.cumsum(tr.package_w))
        tr.wall_power_w = tr.package_w
        return tr

    def test_average_on_shortest_grid(self):
        traces = [self._trace(10, 3000), self._trace(12, 1000)]
        agg = aggregate_traces(traces)
        assert agg.n_runs == 2
        assert len(agg.times_s) == 10
        assert np.allclose(agg.freq_mhz["P-core"], 2000)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_traces([])

    def test_hpl_with_monitoring_end_to_end(self):
        system = System("raptor-lake-i7-13700", dt_s=0.01)
        result, trace = monitored_run(
            system,
            lambda: run_hpl(system, HplConfig(n=2304, nb=192), variant="intel"),
            period_s=0.5,
            settle_temp_c=None,
        )
        assert result.gflops > 0
        assert len(trace.times_s) >= 1
