"""The ground-truth validation harness and derived-metric groups.

Property suite for :mod:`repro.validate`:

* the classification bands themselves (``classify`` unit tests);
* scorecard structure and strictness on every machine preset — no
  native event may classify ``noisy`` or ``broken`` on a healthy
  machine;
* the parity law extended to the measurement stack: accuracy classes
  are bit-identical across the ``ticks``/``macro``/``events`` engines,
  and any event ``exact`` on one engine is ``exact`` on all;
* fault stability: eight seeded mild fault plans (hotplug of unused
  CPUs, absorbable syscall storms) leave every class unchanged;
* the seeded-counter-bug selftest (``REPRO_VALIDATE_SELFTEST``) is
  *detected* — a mutation test of the validator;
* MetricsRegistry histogram/gauge edge cases and snapshot round-trip;
* derived-group quality degradation paths;
* pinned table outputs of the experiments that consume derived groups.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.checkpoint.pickler import dumps, loads
from repro.experiments import hybrid_eventset, overhead, rapl_overhead
from repro.faults import CpuOffline, CpuOnline, FaultPlan, PerfSyscallStorm
from repro.hw.machines import MACHINE_PRESETS
from repro.trace.tracer import MetricsRegistry, _bucket
from repro.validate import (
    Accuracy,
    MeasurementBundle,
    Scorecard,
    classify,
    evaluate,
    evaluate_all,
    run_validation,
    selftest_detected,
)

RAPTOR = "raptor-lake-i7-13700"
ENGINES = ("ticks", "macro", "events")


# -- classification bands --------------------------------------------------


class TestClassify:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            classify([], [])

    def test_exact_within_quantization(self):
        # Counter truncation: up to 2 counts off is still exact.
        assert classify([100.0, 300.0], [101.0, 298.0]) is Accuracy.EXACT

    def test_exact_within_relative_tolerance(self):
        e = 1e12
        assert classify([e], [e * (1 + 1e-10)]) is Accuracy.EXACT

    def test_nan_is_broken(self):
        assert classify([100.0], [float("nan")]) is Accuracy.BROKEN
        assert classify([100.0], [float("inf")]) is Accuracy.BROKEN

    def test_expected_nothing_measured_something_is_broken(self):
        assert classify([0.0], [50.0]) is Accuracy.BROKEN

    def test_both_nothing_is_exact(self):
        assert classify([0.0, 0.0], [0.0, 1.0]) is Accuracy.EXACT

    def test_stable_scale_factor_is_proportional(self):
        assert classify([1000.0, 3000.0], [1040.0, 3135.0]) is Accuracy.PROPORTIONAL

    def test_zero_expected_samples_are_skipped(self):
        # A zero-expected sample with ~zero measured doesn't block the
        # ratio analysis of the remaining samples.
        assert classify([0.0, 1000.0], [0.0, 1040.0]) is Accuracy.PROPORTIONAL

    def test_unstable_scale_factor_is_noisy(self):
        assert classify([1000.0, 1000.0], [1200.0, 900.0]) is Accuracy.NOISY

    def test_large_error_is_broken(self):
        assert classify([1000.0], [1500.0]) is Accuracy.BROKEN
        assert classify([1000.0], [10.0]) is Accuracy.BROKEN


# -- the scorecard on one machine ------------------------------------------


@pytest.fixture(scope="module")
def raptor_card() -> Scorecard:
    return run_validation(RAPTOR)


@pytest.fixture(scope="module")
def engine_cards() -> dict[str, Scorecard]:
    return {engine: run_validation(RAPTOR, engine=engine) for engine in ENGINES}


class TestScorecard:
    def test_covers_all_pmus(self, raptor_card):
        pmus = {row.pmu for row in raptor_card.rows}
        assert {"cpu_core", "cpu_atom", "uncore_llc", "power"} <= pmus

    def test_no_broken_or_noisy_on_healthy_machine(self, raptor_card):
        counts = raptor_card.counts()
        assert counts["broken"] == 0
        assert counts["noisy"] == 0
        assert counts["exact"] + counts["proportional"] == len(raptor_card.rows)

    def test_dedicated_counters_are_exact(self, raptor_card):
        # Without multiplexing every core event is a direct integral of
        # the same rate function the oracle evaluates: exact.
        for row in raptor_card.rows:
            if not row.multiplexed:
                assert row.accuracy is Accuracy.EXACT, (row.event, row.measured)

    def test_rapl_rows_exact(self, raptor_card):
        rapl = [r for r in raptor_card.rows if r.pmu == "power"]
        assert len(rapl) == 3  # package, cores, dram
        for row in rapl:
            assert row.arch_event is None and row.core_type is None
            assert row.accuracy is Accuracy.EXACT

    def test_uncore_counts_all_cores(self, raptor_card):
        uncore = [r for r in raptor_card.rows if r.pmu == "uncore_llc"]
        assert len(uncore) == 2  # lookups + misses
        for row in uncore:
            assert row.accuracy is Accuracy.EXACT
            # Both core types contribute: the count exceeds what any
            # single validation thread could have produced alone.
            assert row.measured[0] > 0

    def test_mux_rows_scored_separately(self, raptor_card):
        mux = [r for r in raptor_card.rows if r.multiplexed]
        assert mux, "the deliberately multiplexed run produced no rows"
        for row in mux:
            assert row.accuracy in (Accuracy.EXACT, Accuracy.PROPORTIONAL)
        # Scaled extrapolation cannot be exact for every event: at least
        # one mux row must have genuinely degraded to proportional.
        assert any(r.accuracy is Accuracy.PROPORTIONAL for r in mux)

    def test_accuracy_by_event_excludes_mux(self, raptor_card):
        by_event = raptor_card.accuracy_by_event()
        assert by_event
        assert set(by_event.values()) == {"exact"}

    def test_counts_sum_to_rows(self, raptor_card):
        assert sum(raptor_card.counts().values()) == len(raptor_card.rows)

    def test_json_round_trip(self, raptor_card):
        payload = json.loads(raptor_card.to_json())
        assert payload["machine"] == RAPTOR
        assert payload["counts"] == raptor_card.counts()
        assert len(payload["rows"]) == len(raptor_card.rows)
        for row in payload["rows"]:
            assert row["accuracy"] in {a.value for a in Accuracy}

    def test_selftest_not_detected_on_clean_run(self, raptor_card):
        assert not selftest_detected(raptor_card)


class TestAllPresets:
    @pytest.mark.parametrize("machine", sorted(MACHINE_PRESETS))
    def test_strict_clean(self, machine):
        card = run_validation(machine)
        counts = card.counts()
        assert counts["broken"] == 0, [r.event for r in card.broken()]
        assert counts["noisy"] == 0
        assert len(card.rows) > 10


# -- engine parity ---------------------------------------------------------


class TestEngineParity:
    def test_classes_bit_identical_across_engines(self, engine_cards):
        maps = {e: c.class_map() for e, c in engine_cards.items()}
        assert maps["ticks"] == maps["macro"] == maps["events"]

    def test_exact_on_one_engine_means_exact_on_all(self, engine_cards):
        for engine, card in engine_cards.items():
            for row in card.rows:
                if row.accuracy is not Accuracy.EXACT:
                    continue
                for other, other_card in engine_cards.items():
                    assert other_card.class_map()[row.key] == "exact", (
                        f"{row.event} exact on {engine} but not {other}"
                    )

    def test_measured_values_identical_across_engines(self, engine_cards):
        # Stronger than class parity: dedicated-counter samples are
        # bit-identical (the engines' state-digest parity law, observed
        # through the full PAPI stack).  Multiplexed rows are excluded —
        # scaled extrapolation depends on rotation-slice timing, which
        # the event-driven engine quantizes differently; only their
        # *class* is engine-invariant.
        by_key = {}
        for card in engine_cards.values():
            for row in card.rows:
                if row.multiplexed:
                    continue
                by_key.setdefault(row.key, []).append(tuple(row.measured))
        for key, samples in by_key.items():
            assert len(set(samples)) == 1, key


# -- fault stability -------------------------------------------------------


def _mild_plan(seed: int):
    """A fault plan builder: hotplug CPUs that host no validation
    thread, plus a syscall storm small enough for the retry loop."""

    def build(system):
        topo = system.topology
        used = {topo.cpus_of_type(ct.name)[0] for ct in topo.core_types}
        free = sorted(set(range(topo.n_cpus)) - used)
        cpu = free[seed % len(free)]
        errno_name = "EBUSY" if seed % 2 == 0 else "EINTR"
        return (
            FaultPlan()
            .at(1e-4 + seed * 2e-5, CpuOffline(cpu))
            .at(2e-4, PerfSyscallStorm(errno_name=errno_name, count=1 + seed % 4, ops=("read",)))
            .at(3e-4, CpuOnline(cpu))
        )

    return build


class TestFaultStability:
    @pytest.fixture(scope="class")
    def reference(self) -> dict:
        return run_validation(RAPTOR, include_mux=False).class_map()

    @pytest.mark.parametrize("seed", range(8))
    def test_classes_stable_under_mild_faults(self, seed, reference):
        card = run_validation(
            RAPTOR, include_mux=False, fault_plan_fn=_mild_plan(seed)
        )
        assert card.class_map() == reference


# -- the seeded-bug selftest -----------------------------------------------


class TestSelftest:
    def test_seeded_decode_bug_is_caught(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_SELFTEST", "1")
        card = run_validation(RAPTOR)
        assert selftest_detected(card)
        broken = card.broken()
        assert broken
        # Only the corrupted events break; collateral damage would mean
        # the harness can't localize a miscounting counter.
        assert {r.arch_event for r in broken} == {"BRANCH_MISSES"}

    def test_selftest_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_SELFTEST", "0")
        card = run_validation(RAPTOR, include_mux=False)
        assert not card.broken()


# -- MetricsRegistry edge cases --------------------------------------------


class TestMetricsRegistryEdges:
    def test_non_positive_observations_share_underflow_bucket(self):
        m = MetricsRegistry()
        m.observe("lat", value=0.0)
        m.observe("lat", value=-5.0)
        m.observe("lat", value=float("nan"))
        m.observe("lat", value=float("-inf"))
        assert m.histograms[("lat", None)] == {-1075: 4}

    def test_bucket_is_binary_exponent(self):
        assert _bucket(1.0) == 1       # frexp(1.0) = (0.5, 1)
        assert _bucket(0.75) == 0
        assert _bucket(1024.0) == 11
        assert _bucket(5e-324) == -1073  # smallest subnormal
        assert _bucket(0.0) == -1075
        assert _bucket(float("inf")) == -1075

    def test_gauge_overwrites_counter_accumulates(self):
        m = MetricsRegistry()
        m.gauge("temp", "P-core", 55.0)
        m.gauge("temp", "P-core", 71.0)
        m.counter("ticks", "P-core", 2.0)
        m.counter("ticks", "P-core", 3.0)
        assert m.gauges[("temp", "P-core")] == 71.0
        assert m.counters[("ticks", "P-core")] == 5.0

    def test_as_dict_key_collision_hazard(self):
        # Flattening (name, key) to "name|key" collides when a metric
        # name itself contains the separator: both entries survive in
        # the registry but only one in the flattened dict.  Documented
        # hazard — names must not contain '|'.
        m = MetricsRegistry()
        m.counter("a|b", None, 1.0)
        m.counter("a", "b", 2.0)
        assert len(m.counters) == 2
        assert len(m.as_dict()["counters"]) == 1

    def test_as_dict_sorted_and_json_safe(self):
        m = MetricsRegistry()
        m.counter("z", "k2", 1.0)
        m.counter("z", "k1", 1.0)
        m.counter("a", None, 1.0)
        m.observe("h", value=3.0)
        d = m.as_dict()
        assert list(d["counters"]) == ["a", "z|k1", "z|k2"]
        json.dumps(d)  # no tuples or non-string keys survive

    def test_snapshot_round_trip(self):
        m = MetricsRegistry()
        m.counter("c", "P-core", 7.0)
        m.gauge("g", None, -1.5)
        m.observe("h", "E-core", 0.0)
        m.observe("h", "E-core", 123.0)
        clone = loads(dumps(m))
        assert clone.counters == m.counters
        assert clone.gauges == m.gauges
        assert clone.histograms == m.histograms
        assert clone.as_dict() == m.as_dict()
        # The clone is independent state, not an alias.
        clone.counter("c", "P-core", 1.0)
        assert m.counters[("c", "P-core")] == 7.0


# -- derived-metric groups -------------------------------------------------


def _validated_bundle(**overrides) -> MeasurementBundle:
    base = dict(
        counters={"instructions": 4e6, "cycles": 2e6, "fp_ops": 8e6},
        runtime_s=1e-3,
        energy_j=0.05,
        accuracy={"instructions": "exact", "cycles": "exact", "fp_ops": "exact"},
    )
    base.update(overrides)
    return MeasurementBundle(**base)


class TestDerivedGroups:
    def test_validated_inputs_are_ok(self):
        v = evaluate("ipc", _validated_bundle())
        assert v.ok and v.value == 2.0 and v.reasons == []

    def test_missing_input_never_silent_zero(self):
        v = evaluate("ipc", MeasurementBundle(counters={"instructions": 1e6}))
        assert v.quality == "missing"
        assert v.value is None
        assert any("cycles" in r for r in v.reasons)

    def test_non_finite_counter_counts_as_missing(self):
        v = evaluate(
            "ipc",
            _validated_bundle(
                counters={"instructions": float("nan"), "cycles": 2e6}
            ),
        )
        assert v.quality == "missing"

    def test_unvalidated_counter_degrades(self):
        v = evaluate("ipc", _validated_bundle(accuracy={}))
        assert v.quality == "degraded"
        assert v.value == 2.0  # still computed, but with caveats
        assert any("unvalidated" in r for r in v.reasons)

    def test_noisy_accuracy_degrades(self):
        v = evaluate(
            "ipc",
            _validated_bundle(
                accuracy={"instructions": "exact", "cycles": "noisy"}
            ),
        )
        assert v.quality == "degraded"
        assert any("'noisy'" in r for r in v.reasons)

    def test_multiplexed_counter_degrades(self):
        v = evaluate(
            "ipc", _validated_bundle(mux_scale={"cycles": 0.5})
        )
        assert v.quality == "degraded"
        assert any("multiplexed" in r for r in v.reasons)

    def test_scorecard_accuracy_plugs_in(self, raptor_card):
        # The harness output feeds the groups layer directly: rename the
        # per-fullname classes onto architectural counter names.
        by_event = raptor_card.accuracy_by_event()
        inst = by_event["adl_glc::INST_RETIRED:ANY"]
        cyc = by_event["adl_glc::CPU_CLK_UNHALTED:THREAD"]
        v = evaluate(
            "ipc",
            _validated_bundle(accuracy={"instructions": inst, "cycles": cyc}),
        )
        assert v.ok

    def test_zero_denominator_is_missing_not_crash(self):
        v = evaluate("ipc", _validated_bundle(counters={"instructions": 0.0, "cycles": 0.0}))
        assert v.value is None
        assert v.quality == "missing"
        assert "cycles == 0" in v.reasons

    def test_gflops_and_energy_per_flop_units(self):
        b = _validated_bundle()
        g = evaluate("gflops", b)
        assert g.value == pytest.approx(8e6 / 1e-3 / 1e9)
        e = evaluate("energy_per_flop", b)
        assert e.value == pytest.approx(0.05 / 8e6 * 1e9)  # nJ/flop

    def test_freq_residency_per_cluster(self):
        b = MeasurementBundle(
            freq_mhz={"P-core": [5000.0, 5000.0, 2000.0], "E-core": [3000.0]}
        )
        v = evaluate("freq_residency", b)
        assert v.ok and v.value is None
        assert v.per_key["P-core.mean_mhz"] == pytest.approx(4000.0)
        assert v.per_key["P-core.peak_residency"] == pytest.approx(2 / 3)
        assert v.per_key["E-core.peak_residency"] == 1.0

    def test_mux_quality_reports_worst(self):
        v = evaluate(
            "mux_quality",
            MeasurementBundle(mux_scale={"a": 1.0, "b": 0.25}),
        )
        assert v.value == 0.25
        assert v.quality == "degraded"

    def test_instr_share_zero_total(self):
        v = evaluate(
            "instr_share",
            MeasurementBundle(instructions_by_pmu={"adl_glc": 0.0, "adl_grt": 0.0}),
        )
        assert v.value == 0.0
        assert v.per_key == {"adl_glc": 0.0, "adl_grt": 0.0}

    def test_evaluate_all_covers_every_group(self):
        out = evaluate_all(MeasurementBundle())
        assert set(out) == {
            "ipc",
            "gflops",
            "energy_per_flop",
            "freq_residency",
            "mux_quality",
            "instr_share",
            "papi_op_cost",
        }
        # An empty bundle satisfies no group's requirements.
        assert all(v.quality == "missing" for v in out.values())


# -- derived-group consumers: pinned experiment outputs --------------------


OVERHEAD_TABLE = """\
EventSet                groups  start syscalls  read syscalls  stop syscalls  read sysc/group  read instr cost
----------------------  ------  --------------  -------------  -------------  ---------------  ---------------
1 PMU, 2 events         1       2               1              2              1.0              3400
2 PMUs, 2 events        2       4               2              4              1.0              6800
2 PMUs, 4 events        2       4               2              4              1.0              6800
2 PMUs + uncore + RAPL  4       8               4              8              1.0              12800
  rdpmc on matching core: valid=True (value 2000000); on foreign core: valid=False"""

RAPL_TABLE = """\
  baseline (unmonitored): runtime 2.045 ms, energy 0.0500 J
reads  reads/s  runtime ms  runtime vs base  energy J  energy vs base  PAPI energy J  overhead instr
-----  -------  ----------  ---------------  --------  --------------  -------------  --------------
0      0        2.053       +0.388%          0.0502    +0.283%         0.0485         64800
10     4853     2.060       +0.748%          0.0503    +0.544%         0.0485         124800
100    47024    2.127       +3.984%          0.0522    +4.354%         0.0510         664800
1000   358637   2.788       +36.342%         0.0684    +36.633%        0.0661         6064800"""


class TestOverheadDerived:
    @pytest.fixture(scope="class")
    def result(self):
        return overhead.run_overhead()

    def test_table_output_pinned(self, result):
        assert overhead.render(result) == OVERHEAD_TABLE

    def test_all_shapes_hold(self, result):
        assert all(overhead.shape_holds(result).values())

    def test_derived_group_per_config(self, result):
        for label in result.costs:
            v = result.derived[label]
            assert v.group == "papi_op_cost"
            assert result.syscalls_per_group(label, "read") == 1.0
            assert result.syscalls_per_group(label, "start") == 2.0


class TestRaplOverheadDerived:
    @pytest.fixture(scope="class")
    def result(self):
        return rapl_overhead.run_rapl_overhead()

    def test_table_output_pinned(self, result):
        assert rapl_overhead.render(result) == RAPL_TABLE

    def test_all_shapes_hold(self, result):
        assert all(rapl_overhead.shape_holds(result).values())

    def test_perturbation_grows_with_read_rate(self, result):
        inflations = [r.runtime_inflation_pct for r in result.rows]
        assert inflations == sorted(inflations)
        assert inflations[-1] > 10 * inflations[0]


class TestHybridEventsetDerived:
    def test_pinned_runs_attribute_all_instructions_to_one_pmu(self):
        p = hybrid_eventset.run_hybrid_test(
            mode="hybrid", pin="P-core", reps=20, seed=7
        )
        e = hybrid_eventset.run_hybrid_test(
            mode="hybrid", pin="E-core", reps=20, seed=7
        )
        assert p.summary_line() == (
            "[hybrid, pin=P-core] Average instructions "
            "adl_glc: 1012440 adl_grt: 0 (sum 1012440)"
        )
        assert e.summary_line() == (
            "[hybrid, pin=E-core] Average instructions "
            "adl_glc: 0 adl_grt: 1012440 (sum 1012440)"
        )

    def test_instr_share_is_a_derived_group(self):
        r = hybrid_eventset.run_hybrid_test(
            mode="hybrid", pin="P-core", reps=10, seed=7
        )
        share = r.instr_share()
        assert share.group == "instr_share"
        assert share.per_key["adl_glc"] == 1.0
        assert share.per_key["adl_grt"] == 0.0
        assert r.avg_total == share.value
