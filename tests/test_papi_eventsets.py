"""PAPI EventSet lifecycle and the legacy/hybrid behaviour matrix."""

import pytest

from repro.papi import Papi, PapiError
from repro.papi.consts import PapiErrorCode
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5))


def _thread(system, instructions=1e6, cpu=None):
    affinity = {cpu} if cpu is not None else None
    return system.machine.spawn(
        SimThread("app", Program([ComputePhase(instructions, RATES)]), affinity=affinity)
    )


class TestLifecycle:
    def test_basic_count(self, raptor):
        papi = Papi(raptor)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _thread(raptor, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        values = papi.stop(es)
        assert values[0] == pytest.approx(1e6)

    def test_unknown_eventset(self, raptor):
        papi = Papi(raptor)
        with pytest.raises(PapiError) as e:
            papi.start(99)
        assert e.value.code == PapiErrorCode.ENOEVST

    def test_unknown_event_name(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "adl_glc::NOT_AN_EVENT")
        assert e.value.code == PapiErrorCode.ENOEVNT

    def test_start_empty_eventset(self, raptor):
        papi = Papi(raptor)
        es = papi.create_eventset()
        with pytest.raises(PapiError) as e:
            papi.start(es)
        assert e.value.code == PapiErrorCode.EINVAL

    def test_stop_without_start(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        with pytest.raises(PapiError) as e:
            papi.stop(es)
        assert e.value.code == PapiErrorCode.ENOTRUN

    def test_double_start(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        with pytest.raises(PapiError) as e:
            papi.start(es)
        assert e.value.code == PapiErrorCode.EISRUN

    def test_add_while_running_rejected(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        with pytest.raises(PapiError):
            papi.add_event(es, "adl_glc::CPU_CLK_UNHALTED:THREAD")

    def test_add_before_attach_rejected(self, raptor):
        papi = Papi(raptor)
        es = papi.create_eventset()
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        assert e.value.code == PapiErrorCode.EINVAL

    def test_reset_and_read(self, raptor):
        papi = Papi(raptor)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _thread(raptor, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        assert papi.read(es)[0] > 0
        papi.reset(es)
        assert papi.read(es)[0] == 0

    def test_accum(self, raptor):
        papi = Papi(raptor)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _thread(raptor, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        totals = papi.accum(es, [0.0])
        assert totals[0] == pytest.approx(1e6)
        assert papi.read(es)[0] == 0  # accum resets

    def test_accum_length_checked(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        with pytest.raises(PapiError):
            papi.accum(es, [0.0, 0.0])

    def test_cleanup_and_destroy(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.cleanup_eventset(es)
        assert papi.eventset(es).num_events == 0
        papi.destroy_eventset(es)
        with pytest.raises(PapiError):
            papi.eventset(es)

    def test_one_active_eventset_per_component(self, raptor):
        """The constraint that defeats the two-EventSet workaround (§IV-E):
        one thread cannot run a big-PMU and a little-PMU EventSet at once."""
        papi = Papi(raptor)
        t = _thread(raptor)
        es1, es2 = papi.create_eventset(), papi.create_eventset()
        papi.attach(es1, t)
        papi.attach(es2, t)
        papi.add_event(es1, "adl_glc::INST_RETIRED:ANY")
        papi.add_event(es2, "adl_grt::INST_RETIRED:ANY")
        papi.start(es1)
        with pytest.raises(PapiError) as e:
            papi.start(es2)
        assert e.value.code == PapiErrorCode.EISRUN
        papi.stop(es1)
        papi.start(es2)  # fine once the first stopped
        papi.stop(es2)

    def test_different_threads_may_measure_concurrently(self, raptor):
        """The per-component limit is per thread context: two threads can
        each run their own EventSet at the same time (PAPI_thread_init
        semantics), which multithreaded codes like HPL rely on."""
        papi = Papi(raptor)
        p_cpus = raptor.topology.cpus_of_type("P-core")
        t1 = _thread(raptor, cpu=p_cpus[0])
        t2 = _thread(raptor, cpu=p_cpus[2])
        esids = []
        for t in (t1, t2):
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
            papi.start(es)
            esids.append(es)
        raptor.machine.run_until_done([t1, t2], max_s=5)
        for es in esids:
            assert papi.stop(es)[0] == pytest.approx(1e6)

    def test_reattach_with_events_rejected(self, raptor):
        papi = Papi(raptor)
        t1, t2 = _thread(raptor), _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t1)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        with pytest.raises(PapiError):
            papi.attach(es, t2)


class TestLegacyVsHybrid:
    def test_legacy_rejects_cross_pmu(self, raptor):
        papi = Papi(raptor, mode="legacy")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
        assert e.value.code == PapiErrorCode.ECNFLCT

    def test_hybrid_accepts_cross_pmu(self, raptor):
        papi = Papi(raptor, mode="hybrid")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
        assert papi.num_groups(es) == 2

    def test_legacy_unqualified_fails_on_hybrid_machine(self, raptor):
        """§IV-D: multiple default PMUs break unpatched PAPI."""
        papi = Papi(raptor, mode="legacy")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "INST_RETIRED:ANY")
        assert e.value.code == PapiErrorCode.EMISC

    def test_hybrid_unqualified_prefers_pcore(self, raptor):
        """The patched default-PMU choice is the P-core (hard-coded
        preference for the big core type)."""
        papi = Papi(raptor, mode="hybrid")
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _thread(raptor, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "INST_RETIRED:ANY")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        assert papi.stop(es)[0] == pytest.approx(1e6)
        assert papi.num_groups(es) == 1

    def test_legacy_works_on_homogeneous_machine(self, xeon):
        """'On a traditional machine you get the expected result.'"""
        papi = Papi(xeon, mode="legacy")
        t = _thread(xeon)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "INST_RETIRED:ANY")
        papi.add_event(es, "PAPI_TOT_CYC")
        papi.start(es)
        xeon.machine.run_until_done([t], max_s=5)
        values = papi.stop(es)
        assert values[0] == pytest.approx(1e6)
        assert values[1] > 0

    def test_hybrid_on_arm_biglittle(self, orangepi):
        papi = Papi(orangepi, mode="hybrid")
        big_cpu = orangepi.topology.cpus_of_type("big")[0]
        t = _thread(orangepi, cpu=big_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "arm_a72::INST_RETIRED")
        papi.add_event(es, "arm_a53::INST_RETIRED")
        papi.start(es)
        orangepi.machine.run_until_done([t], max_s=5)
        values = papi.stop(es)
        assert values[0] == pytest.approx(1e6)
        assert values[1] == 0

    def test_hybrid_three_pmu_eventset(self, dynamiq):
        papi = Papi(dynamiq, mode="hybrid")
        t = _thread(dynamiq)
        es = papi.create_eventset()
        papi.attach(es, t)
        for pmu in ("arm_x1", "arm_a76", "arm_a55"):
            papi.add_event(es, f"{pmu}::INST_RETIRED")
        assert papi.num_groups(es) == 3
        papi.start(es)
        dynamiq.machine.run_until_done([t], max_s=5)
        values = papi.stop(es)
        assert sum(values) == pytest.approx(1e6, rel=0.05)
