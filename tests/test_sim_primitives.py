"""Unit tests for the small simulation primitives."""

import numpy as np
import pytest

from repro.hw.coretype import ArchEvent, N_ARCH_EVENTS
from repro.hw.machines import _gracemont, _raptor_cove
from repro.hw.pmu import CorePmu, CounterDelta
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestCounterDelta:
    def test_add_and_get(self):
        d = CounterDelta()
        d.add(ArchEvent.INSTRUCTIONS, 100).add(ArchEvent.CYCLES, 50)
        assert d[ArchEvent.INSTRUCTIONS] == 100
        assert d[ArchEvent.CYCLES] == 50
        assert d[ArchEvent.FP_OPS] == 0

    def test_scaled(self):
        d = CounterDelta()
        d.add(ArchEvent.INSTRUCTIONS, 10)
        s = d.scaled(2.5)
        assert s[ArchEvent.INSTRUCTIONS] == 25
        assert d[ArchEvent.INSTRUCTIONS] == 10  # original untouched

    def test_total_nonzero(self):
        d = CounterDelta()
        d.add(ArchEvent.BRANCHES, 7)
        assert d.total_nonzero() == {"BRANCHES": 7.0}


class TestCorePmu:
    def test_accumulate_and_read(self):
        pmu = CorePmu(0, _raptor_cove())
        delta = CounterDelta()
        delta.add(ArchEvent.INSTRUCTIONS, 1000)
        pmu.accumulate(delta)
        pmu.accumulate(delta)
        assert pmu.read(ArchEvent.INSTRUCTIONS) == 2000

    def test_reset(self):
        pmu = CorePmu(0, _raptor_cove())
        pmu.totals[:] = 5.0
        pmu.reset()
        assert pmu.read(ArchEvent.CYCLES) == 0

    def test_unsupported_event_rejected(self):
        pmu = CorePmu(0, _gracemont())
        with pytest.raises(ValueError, match="TOPDOWN"):
            pmu.read(ArchEvent.TOPDOWN_SLOTS)

    def test_counter_width(self):
        assert CorePmu(0, _raptor_cove()).n_counters == 8
        assert CorePmu(0, _gracemont()).n_counters == 6


class TestProgram:
    def test_items_in_order(self):
        phases = [ComputePhase(1, RATES), ControlOp(lambda t: None), ComputePhase(2, RATES)]
        prog = Program(phases)
        assert len(prog) == 3
        assert [prog.next_item() for _ in range(3)] == phases
        assert prog.next_item() is None

    def test_extend(self):
        prog = Program([])
        extra = ComputePhase(1, RATES)
        prog.extend([extra])
        assert prog.next_item() is extra


class TestSimThread:
    def test_injected_phases_run_first(self):
        phase = ComputePhase(5, RATES)
        t = SimThread("x", Program([phase]))
        injected = ComputePhase(1, RATES)
        t.inject(injected)
        assert t.take_next() is injected
        assert t.take_next() is phase

    def test_inject_overhead_zero_is_noop(self):
        t = SimThread("x", Program([]))
        t.inject_overhead(0)
        assert t.take_next() is None

    def test_account_aggregates_per_pmu(self):
        t = SimThread("x", Program([]))
        v = np.zeros(N_ARCH_EVENTS)
        v[ArchEvent.INSTRUCTIONS] = 10
        t.account("cpu_core", v, 0.5)
        t.account("cpu_atom", v, 0.25)
        t.account("cpu_core", v, 0.5)
        assert t.counters["cpu_core"][ArchEvent.INSTRUCTIONS] == 20
        assert t.counters_total()[ArchEvent.INSTRUCTIONS] == 30
        assert t.total_runtime_s == pytest.approx(1.25)
        assert t.runtime_s["cpu_core"] == pytest.approx(1.0)

    def test_allowed_on(self):
        t = SimThread("x", Program([]), affinity={2, 3})
        assert t.allowed_on(2)
        assert not t.allowed_on(4)
        free = SimThread("y", Program([]))
        assert free.allowed_on(0)
