"""Perf event lifecycle churn.

Open/close/reopen cycles interleaved with running ticks (and with the
fast path's cached dispatch state): closing a group leader must promote
its siblings to singleton events (like Linux's ``perf_group_detach``),
freed counter budget must become available again, and the indexed
dispatch cache must never serve entries from a previous generation.
"""

from __future__ import annotations

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf import PerfEventAttr
from repro.kernel.perf.subsystem import PerfIoctl
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.3)
)


def _attr(system, pmu_name="cpu_core", config=0x00C0):
    ptype = system.perf.registry.by_name[pmu_name].type
    return PerfEventAttr(type=ptype, config=config)


def _spawn(system, name="app", cpu=0, instr=1e11):
    return system.machine.spawn(
        SimThread(name, Program([ComputePhase(instr, RATES)]), affinity={cpu})
    )


class TestLeaderPromotion:
    def test_closing_leader_promotes_siblings_to_singletons(self):
        system = System(MACHINE, dt_s=0.001)
        t = _spawn(system)
        perf = system.perf
        lead = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        members = [
            perf.perf_event_open(
                _attr(system, config=c), pid=t.tid, cpu=-1, group_fd=lead
            )
            for c in (0x003C, 0x412E)
        ]
        perf.ioctl(lead, PerfIoctl.ENABLE, flag_group=True)
        system.machine.run_for(0.05)

        before = {fd: perf.read(fd).value for fd in members}
        perf.close(lead)

        for fd in members:
            ev = perf._event(fd)
            assert ev.is_group_leader
            assert ev.group_leader is ev
            assert ev.siblings == []

        # Promoted singletons keep counting on their own.
        system.machine.run_for(0.05)
        for fd in members:
            assert perf.read(fd).value > before[fd]

        # The closed leader's fd is gone for good.
        with pytest.raises(KernelError) as err:
            perf.read(lead)
        assert err.value.kernel_errno is Errno.EBADF

    def test_promoted_sibling_can_lead_a_new_group(self):
        system = System(MACHINE, dt_s=0.001)
        t = _spawn(system)
        perf = system.perf
        lead = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        member = perf.perf_event_open(
            _attr(system, config=0x003C), pid=t.tid, cpu=-1, group_fd=lead
        )
        perf.close(lead)
        # ``member`` is a singleton leader now, so it can accept members.
        new_member = perf.perf_event_open(
            _attr(system, config=0x412E), pid=t.tid, cpu=-1, group_fd=member
        )
        assert perf._event(new_member).group_leader is perf._event(member)

    def test_closing_member_detaches_it_from_the_group(self):
        system = System(MACHINE, dt_s=0.001)
        t = _spawn(system)
        perf = system.perf
        lead = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        member = perf.perf_event_open(
            _attr(system, config=0x003C), pid=t.tid, cpu=-1, group_fd=lead
        )
        lead_ev, member_ev = perf._event(lead), perf._event(member)
        assert member_ev in lead_ev.siblings
        perf.close(member)
        assert lead_ev.siblings == []
        assert lead_ev.hw_counters_needed() == 1

    def test_counter_budget_frees_on_close(self):
        system = System(MACHINE, dt_s=0.001)
        glc = system.perf.registry.by_name["cpu_core"]
        system.perf.reserve_counters(
            "cpu_core", glc.n_counters + glc.n_fixed - 2
        )
        t = _spawn(system)
        perf = system.perf
        lead = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        member = perf.perf_event_open(
            _attr(system, config=0x003C), pid=t.tid, cpu=-1, group_fd=lead
        )
        with pytest.raises(KernelError) as err:
            perf.perf_event_open(
                _attr(system, config=0x412E), pid=t.tid, cpu=-1, group_fd=lead
            )
        assert err.value.kernel_errno is Errno.EINVAL
        perf.close(member)  # frees one hardware counter
        perf.perf_event_open(
            _attr(system, config=0x412E), pid=t.tid, cpu=-1, group_fd=lead
        )


class TestDispatchCacheChurn:
    """The indexed dispatch cache is keyed by generation; churn must
    always invalidate it — on both engine paths, bit-identically."""

    def _churn(self, system):
        perf = system.perf
        t = _spawn(system)
        readings = []

        fd1 = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        perf.ioctl(fd1, PerfIoctl.ENABLE)
        system.machine.run_for(0.03)
        readings.append(perf.read(fd1).value)
        perf.close(fd1)

        # Reopen: the new event must start from zero, not inherit any
        # state the cache may remember from fd1's slot.
        fd2 = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        perf.ioctl(fd2, PerfIoctl.ENABLE)
        system.machine.run_for(0.03)
        readings.append(perf.read(fd2).value)

        # Group churn mid-run: add a member, run, drop the leader.
        fd3 = perf.perf_event_open(
            _attr(system, config=0x003C), pid=t.tid, cpu=-1, group_fd=fd2
        )
        perf.ioctl(fd3, PerfIoctl.ENABLE)
        system.machine.run_for(0.03)
        readings.append(perf.read(fd3).value)
        perf.close(fd2)
        system.machine.run_for(0.03)
        readings.append(perf.read(fd3).value)
        return readings

    def test_churn_counts_identical_on_both_paths(self):
        slow = self._churn(System(MACHINE, dt_s=0.001, fastpath=False))
        fast = self._churn(System(MACHINE, dt_s=0.001, fastpath=True))
        assert slow == fast
        assert all(v > 0 for v in slow)
        # Reopened event restarted from zero over an equal interval.
        assert slow[1] == pytest.approx(slow[0], rel=0.2)

    def test_reopen_after_close_starts_from_zero(self):
        system = System(MACHINE, dt_s=0.001)
        t = _spawn(system)
        perf = system.perf
        fd1 = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        perf.ioctl(fd1, PerfIoctl.ENABLE)
        system.machine.run_for(0.05)
        first = perf.read(fd1).value
        assert first > 0
        perf.close(fd1)
        fd2 = perf.perf_event_open(_attr(system), pid=t.tid, cpu=-1)
        perf.ioctl(fd2, PerfIoctl.ENABLE)
        assert perf.read(fd2).value == 0.0
