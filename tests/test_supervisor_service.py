"""The measurement daemon: admission, job API, retry policy, 10^4 scale.

Three layers under test:

* :class:`ServiceCore` in-process — idempotent/bounded/durable admission,
  cancel (pending and running), the cancel→resubmit relaunch guard;
* the real daemon over its unix socket (``tools/sweep.py serve``) —
  submit/poll/wait/stream/status/shutdown, stale-socket recovery;
* :class:`RetryPolicy` on a fake clock — deterministic schedules, no
  real sleeping.

The ``slow``-marked stress test is the 10^4 acceptance bar: one batched
submit of ten thousand specs must land within a wall-time bound, in
bounded memory, with a single journal fsync — and resubmitting the same
batch must be pure dedup (zero new journal bytes).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import tracemalloc

import pytest

from repro.supervisor import (
    CANCELLED,
    DONE,
    PENDING,
    Journal,
    ResultCache,
    RetryPolicy,
    RunSpec,
    ServiceClient,
    ServiceCore,
    ServiceError,
    spec_digest,
)

#: Small, fast HPL point used throughout.
HPL_PARAMS = {"n": 1000, "nb": 128, "slice_s": 0.02, "dt_s": 0.01}

SWEEP = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "sweep.py",
)


def _core(tmp_path, **kwargs) -> ServiceCore:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backoff_s", 0.0)
    kwargs.setdefault("checkpoint_every_s", 0.04)
    kwargs.setdefault("log", lambda m: None)
    core = ServiceCore(str(tmp_path / "svc"), **kwargs)
    core.open(resume=kwargs.get("resume", False))
    return core


def _events(core, etype=None):
    with open(core.journal_path) as fh:
        events = [json.loads(line) for line in fh]
    if etype is not None:
        events = [e for e in events if e["type"] == etype]
    return events


class TestCoreAdmission:
    def test_submit_runs_to_done(self, tmp_path):
        core = _core(tmp_path)
        verdicts = core.submit([RunSpec("r1", "hpl", dict(HPL_PARAMS))])
        assert verdicts == [
            {"run_id": "r1", "disposition": "admitted", "status": PENDING}
        ]
        core.run_until_idle()
        core.close()
        assert core.records["r1"].status == DONE

    def test_idempotent_by_digest(self, tmp_path):
        """The same spec under any id converges on one job: duplicate
        verdicts point at the existing run, nothing is re-journaled."""
        core = _core(tmp_path)
        spec = RunSpec("r1", "hpl", dict(HPL_PARAMS))
        core.submit([spec])
        size = core.journal.size_bytes
        again = core.submit(
            [RunSpec("r1", "hpl", dict(HPL_PARAMS)),
             RunSpec("other-name", "hpl", dict(HPL_PARAMS)),
             RunSpec("", "hpl", dict(HPL_PARAMS))]
        )
        assert [v["disposition"] for v in again] == ["duplicate"] * 3
        assert {v["run_id"] for v in again} == {"r1"}
        assert core.journal.size_bytes == size  # pure dedup: no new bytes
        assert len(core.records) == 1

    def test_anonymous_spec_gets_digest_id(self, tmp_path):
        core = _core(tmp_path)
        [verdict] = core.submit([RunSpec("", "hpl", dict(HPL_PARAMS))])
        digest = spec_digest("hpl", dict(HPL_PARAMS))
        assert verdict["run_id"] == f"hpl-{digest[:12]}"

    def test_id_conflict_is_rejected(self, tmp_path):
        core = _core(tmp_path)
        core.submit([RunSpec("r1", "hpl", dict(HPL_PARAMS))])
        [verdict] = core.submit([RunSpec("r1", "hpl", dict(HPL_PARAMS, n=2000))])
        assert verdict["disposition"] == "rejected"
        assert "different spec" in verdict["reason"]

    def test_backpressure_rejects_past_max_pending(self, tmp_path):
        core = _core(tmp_path, max_pending=2)
        specs = [
            RunSpec(f"r{i}", "hpl", dict(HPL_PARAMS, n=1000 + i))
            for i in range(5)
        ]
        verdicts = core.submit(specs)
        dispositions = [v["disposition"] for v in verdicts]
        assert dispositions == ["admitted", "admitted"] + ["rejected"] * 3
        assert all("queue full" in v["reason"] for v in verdicts[2:])
        # Explicit backpressure, never a silent drop: the rejected specs
        # left no trace in the records or the journal.
        assert len(core.records) == 2
        rejected = core.metrics.counters[("fleet.admission_rejected", "full")]
        assert rejected == 3.0
        # ... and once the backlog drains, headroom reopens: two more fit
        # (the cap is still 2), the fifth waits for the next drain.
        core.run_until_idle()
        verdicts = core.submit(specs)
        assert [v["disposition"] for v in verdicts] == (
            ["duplicate", "duplicate", "admitted", "admitted", "rejected"]
        )
        core.run_until_idle()
        [verdict] = core.submit([specs[4]])
        assert verdict["disposition"] == "admitted"
        core.run_until_idle()
        core.close()
        assert all(r.status == DONE for r in core.records.values())

    def test_failed_spec_requeues_with_fresh_budget(self, tmp_path):
        core = _core(tmp_path, max_attempts=1)
        spec = RunSpec(
            "boom", "flaky-hpl",
            dict(HPL_PARAMS, crash_at_s=0.02, crash_on_attempts=[1, 2, 3]),
        )
        core.submit([spec])
        core.run_until_idle()
        assert core.records["boom"].status == "failed"
        [verdict] = core.submit([spec])
        assert verdict["disposition"] == "requeued"
        assert core.records["boom"].attempts == 0
        core.close()

    def test_admission_cache_hit_is_zero_launch(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warm = ServiceCore(
            str(tmp_path / "warm"), workers=1, backoff_s=0.0,
            cache_dir=cache_dir, log=lambda m: None,
        )
        warm.open()
        warm.submit([RunSpec("r1", "hpl", dict(HPL_PARAMS))])
        warm.run_until_idle()
        warm.close()

        core = ServiceCore(
            str(tmp_path / "svc"), workers=1, cache_dir=cache_dir,
            log=lambda m: None,
        )
        core.open()
        [verdict] = core.submit([RunSpec("r2", "hpl", dict(HPL_PARAMS))])
        core.close()
        assert verdict["disposition"] == "cached"
        assert verdict["status"] == DONE
        assert _events(core, "launch") == []
        assert core.records["r2"].cached
        # The cached result was journaled inside the admission batch.
        [done] = _events(core, "done")
        assert done["cached"] is True

    def test_cancel_pending_never_launches(self, tmp_path):
        core = _core(tmp_path)
        core.submit([RunSpec("r1", "hpl", dict(HPL_PARAMS))])
        verdict = core.cancel("r1")
        assert verdict["disposition"] == "cancelled-pending"
        core.run_until_idle()
        core.close()
        assert core.records["r1"].status == CANCELLED
        assert _events(core, "launch") == []
        # The cancel is durable: replay agrees.
        state = Journal.replay(core.journal_path)
        assert state.records["r1"].status == CANCELLED

    def test_cancel_running_kills_the_worker(self, tmp_path):
        core = _core(
            tmp_path,
            workers=1,
            stuck_after_s=60.0,
            poll_interval_s=0.01,
        )
        # A run that wedges on attempt 1 stays in flight until cancelled.
        core.submit([
            RunSpec("wedge", "flaky-hpl",
                    dict(HPL_PARAMS, stall_at_s=0.03, stall_on_attempts=[1]))
        ])
        deadline = time.monotonic() + 30
        while not core.pool.in_flight and time.monotonic() < deadline:
            core.step()
            time.sleep(0.01)
        assert core.pool.in_flight, "worker never launched"
        pid = core.pool.in_flight["wedge"]
        verdict = core.cancel("wedge")
        assert verdict["disposition"] == "cancelled-running"
        core.run_until_idle()
        core.close()
        assert core.records["wedge"].status == CANCELLED
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)

    def test_cancel_then_resubmit_launches_exactly_once(self, tmp_path):
        """The stale-heap-entry guard: a cancelled-then-requeued run must
        launch once, not once per heap entry."""
        core = _core(tmp_path, workers=2)
        spec = RunSpec("r1", "hpl", dict(HPL_PARAMS))
        core.submit([spec])
        core.cancel("r1")
        [verdict] = core.submit([spec])
        assert verdict["disposition"] == "requeued"
        core.run_until_idle()
        core.close()
        assert core.records["r1"].status == DONE
        assert len(_events(core, "launch")) == 1


class _Daemon:
    """A real ``sweep.py serve`` subprocess plus its client."""

    def __init__(self, out_dir: str, extra=(), env_extra=None):
        self.out_dir = out_dir
        env = dict(os.environ)
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [sys.executable, SWEEP, "serve", "--out", out_dir,
             "--workers", "2", "--backoff-s", "0", *extra],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.socket_path = os.path.join(out_dir, "service.sock")

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        client = ServiceClient(
            self.socket_path, retry=RetryPolicy(attempts=1)
        )
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited {self.proc.returncode} before ready"
                )
            try:
                client.ping()
                return
            except OSError:
                time.sleep(0.05)
        raise AssertionError("daemon never became ready")

    def client(self, attempts: int = 3) -> ServiceClient:
        return ServiceClient(
            self.socket_path,
            retry=RetryPolicy(attempts=attempts, base_s=0.1, jitter_seed=0),
        )

    def sigkill(self) -> None:
        self.proc.kill()
        self.proc.wait()

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


class TestDaemon:
    def test_submit_wait_poll_shutdown(self, tmp_path):
        daemon = _Daemon(str(tmp_path / "svc"))
        try:
            daemon.wait_ready()
            client = daemon.client()
            specs = [
                RunSpec("r1", "hpl", dict(HPL_PARAMS)),
                RunSpec("r2", "hpl", dict(HPL_PARAMS, n=2000)),
            ]
            verdicts = client.submit(specs)
            assert [v["disposition"] for v in verdicts] == ["admitted"] * 2
            jobs = client.wait(["r1", "r2"], deadline_s=60)
            assert all(job["status"] == DONE for job in jobs)
            # Resubmission over the wire: duplicate, already done.
            verdicts = client.submit(specs)
            assert [v["disposition"] for v in verdicts] == ["duplicate"] * 2
            assert all(v["status"] == DONE for v in verdicts)
            status = client.status()
            assert status["counts"] == {DONE: 2}
            client.shutdown()
            assert daemon.proc.wait(timeout=30) == 0
            assert not os.path.exists(daemon.socket_path)
        finally:
            daemon.stop()

    def test_stream_follows_a_run_to_done(self, tmp_path):
        daemon = _Daemon(str(tmp_path / "svc"))
        try:
            daemon.wait_ready()
            client = daemon.client()
            client.submit([RunSpec("r1", "hpl", dict(HPL_PARAMS))])
            types = [e["type"] for e in client.stream("r1")]
            assert types[0] == "add"
            assert "launch" in types
            assert types[-1] == "done"
        finally:
            daemon.stop()

    def test_stale_socket_is_replaced_on_boot(self, tmp_path):
        out = str(tmp_path / "svc")
        os.makedirs(out)
        # Crash debris: a socket file nobody is listening on.
        import socket as socketlib

        stale = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        stale.bind(os.path.join(out, "service.sock"))
        stale.close()  # closed listener → connects refused → stale
        daemon = _Daemon(out)
        try:
            daemon.wait_ready()
            assert daemon.client().ping()["ok"]
        finally:
            daemon.stop()

    def test_unknown_run_poll_and_cancel(self, tmp_path):
        daemon = _Daemon(str(tmp_path / "svc"))
        try:
            daemon.wait_ready()
            client = daemon.client()
            [job] = client.poll(["ghost"])
            assert job == {"run_id": "ghost", "status": "unknown"}
            assert client.cancel("ghost")["disposition"] == "unknown"
        finally:
            daemon.stop()


def _raw_roundtrip(socket_path: str, line: bytes) -> dict:
    """Send one raw line over the daemon socket, bypassing ServiceClient."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        conn.connect(socket_path)
        conn.sendall(line)
        buf = bytearray()
        while b"\n" not in buf:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
        return json.loads(bytes(buf).split(b"\n", 1)[0].decode())
    finally:
        conn.close()


class TestWireCorrelation:
    """Every reply — including errors — must echo the request's op/id so
    a client multiplexing requests can match replies to them."""

    def test_unknown_op_reply_echoes_correlation_fields(self, tmp_path):
        daemon = _Daemon(str(tmp_path / "svc"))
        try:
            daemon.wait_ready()
            reply = _raw_roundtrip(
                daemon.socket_path, b'{"op": "frob", "id": 77}\n'
            )
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]
            assert reply["op"] == "frob"
            assert reply["id"] == 77
        finally:
            daemon.stop()

    def test_malformed_line_reply_carries_null_correlation(self, tmp_path):
        daemon = _Daemon(str(tmp_path / "svc"))
        try:
            daemon.wait_ready()
            reply = _raw_roundtrip(daemon.socket_path, b"{not json\n")
            assert reply["ok"] is False
            assert "malformed" in reply["error"]
            # Uncorrelatable, not mismatched: explicit nulls.
            assert reply["op"] is None
            assert reply["id"] is None
        finally:
            daemon.stop()

    def test_bad_request_error_is_still_correlated(self, tmp_path):
        daemon = _Daemon(str(tmp_path / "svc"))
        try:
            daemon.wait_ready()
            reply = _raw_roundtrip(
                daemon.socket_path, b'{"op": "cancel", "id": 3}\n'
            )
            assert reply["ok"] is False
            assert reply["op"] == "cancel"
            assert reply["id"] == 3
        finally:
            daemon.stop()

    def test_client_rejects_mismatched_reply_id(self, tmp_path):
        """A rogue server answering with someone else's id must surface
        as a correlation error, not be silently accepted."""
        socket_path = str(tmp_path / "rogue.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(socket_path)
        server.listen(1)

        def serve_one():
            conn, _ = server.accept()
            with conn:
                buf = bytearray()
                while b"\n" not in buf:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    buf += chunk
                request = json.loads(bytes(buf).split(b"\n", 1)[0].decode())
                reply = {"ok": True, "op": request.get("op"), "id": -999}
                conn.sendall((json.dumps(reply) + "\n").encode())

        thread = threading.Thread(target=serve_one, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                socket_path, retry=RetryPolicy(attempts=1)
            )
            with pytest.raises(ServiceError, match="correlation mismatch"):
                client.ping()
        finally:
            server.close()
            thread.join(timeout=5)


class FakeTime:
    """Injectable clock/sleep: sleeping advances the clock, instantly."""

    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        a = RetryPolicy(attempts=5, base_s=0.2, jitter_seed=7).delays("submit")
        b = RetryPolicy(attempts=5, base_s=0.2, jitter_seed=7).delays("submit")
        c = RetryPolicy(attempts=5, base_s=0.2, jitter_seed=7).delays("poll")
        assert a == b
        assert a != c  # per-label jitter desyncs clients
        assert len(a) == 4
        assert all(d > 0 for d in a)

    def test_retries_transport_errors_then_succeeds(self):
        ft = FakeTime()
        policy = RetryPolicy(
            attempts=4, base_s=0.1, jitter_seed=7,
            clock=ft.clock, sleep=ft.sleep,
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionRefusedError("daemon restarting")
            return {"ok": True}

        assert policy.call(flaky, label="x") == {"ok": True}
        assert len(calls) == 3
        assert ft.slept == policy.delays("x")[:2]

    def test_exhaustion_raises_the_final_error(self):
        ft = FakeTime()
        policy = RetryPolicy(
            attempts=3, base_s=0.1, jitter_seed=None,
            clock=ft.clock, sleep=ft.sleep,
        )
        calls = []

        def down():
            calls.append(1)
            raise ConnectionRefusedError("down for good")

        with pytest.raises(ConnectionRefusedError, match="down for good"):
            policy.call(down)
        assert len(calls) == 3

    def test_deadline_stops_retrying_early(self):
        ft = FakeTime()
        policy = RetryPolicy(
            attempts=100, base_s=1.0, jitter_seed=None,
            deadline_s=2.5, clock=ft.clock, sleep=ft.sleep,
        )
        calls = []

        def down():
            calls.append(1)
            raise ConnectionRefusedError("down")

        with pytest.raises(ConnectionRefusedError):
            policy.call(down)
        # delays 1.0 + 2.0 would pass 2.5s: stop after the second try.
        assert len(calls) == 2

    def test_non_transport_errors_propagate_immediately(self):
        policy = RetryPolicy(attempts=5)
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("a bug, not a flaky daemon")

        with pytest.raises(ValueError):
            policy.call(broken)
        assert len(calls) == 1


@pytest.mark.slow
class TestAdmissionScale:
    @pytest.mark.timeout(120)
    def test_batched_admission_at_1e4_scale(self, tmp_path):
        """The 10^4 acceptance bar: one batched submit of ten thousand
        specs admits within a wall-time bound, in bounded memory, with
        one journal fsync — and a full resubmit is pure dedup."""
        n = 10_000
        core = ServiceCore(
            str(tmp_path / "svc"),
            workers=1,
            max_pending=2 * n,
            log=lambda m: None,
        )
        core.open()
        specs = [
            RunSpec(f"r{i:05d}", "hpl", dict(HPL_PARAMS, n=1000 + i))
            for i in range(n)
        ]
        tracemalloc.start()
        t0 = time.monotonic()
        verdicts = core.submit(specs)
        admit_s = time.monotonic() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert len(verdicts) == n
        assert all(v["disposition"] == "admitted" for v in verdicts)
        assert core.pool.queue_depth == n
        assert admit_s < 30.0, f"admission took {admit_s:.1f}s for {n} specs"
        assert peak < 256 * 1024 * 1024, f"peak {peak / 1e6:.0f} MB"

        # Everything acked is durable — replay sees all n, still pending.
        state = Journal.replay(core.journal_path)
        assert len(state.records) == n
        assert all(r.status == PENDING for r in state.records.values())

        # Resubmitting the whole batch is pure dedup: zero new journal
        # bytes, zero new queue entries, and it must also be fast.
        size = core.journal.size_bytes
        t0 = time.monotonic()
        verdicts = core.submit(specs)
        dedup_s = time.monotonic() - t0
        assert all(v["disposition"] == "duplicate" for v in verdicts)
        assert core.journal.size_bytes == size
        assert core.pool.queue_depth == n
        assert dedup_s < 10.0, f"dedup took {dedup_s:.1f}s"
        core.journal.close()
