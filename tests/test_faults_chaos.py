"""Chaos sweep: seeded fault plans must degrade gracefully, never crash.

Two guarantees from the robustness issue:

* any seeded :meth:`FaultPlan.random` scenario completes without an
  uncaught exception — PAPI reads return NaN + ``PAPI_ECNFLCT`` style
  partial results at worst;
* counters on *surviving* CPUs exactly match a fault-free run: a
  same-cluster E-core hotplug perturbs neither the package power nor the
  DVFS state, so a P-core-pinned thread's counters must be bit-identical
  with and without the fault.
"""

from __future__ import annotations

import math
import os
import random
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.checkpoint import load_object, save_object, state_digest
from repro.faults import (
    CounterStorm,
    CpuOffline,
    CpuOnline,
    FaultPlan,
    PerfSyscallStorm,
    SensorDropout,
)
from repro.papi import Papi
from repro.papi.consts import PapiErrorCode
from repro.sim.engine import SimTimeout
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.3)
)


def _open_counting(system, pmu_name, tid, config=0x00C0):
    from repro.kernel.perf import PerfEventAttr
    from repro.kernel.perf.subsystem import PerfIoctl

    ptype = system.perf.registry.by_name[pmu_name].type
    fd = system.perf.perf_event_open(
        PerfEventAttr(type=ptype, config=config), pid=tid, cpu=-1
    )
    system.perf.ioctl(fd, PerfIoctl.ENABLE)
    return fd


class TestChaosSweep:
    """>= 20 seeded random scenarios, each a full stack exercise."""

    @pytest.mark.parametrize("seed", range(24))
    def test_seeded_plan_completes_without_exceptions(self, seed):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        surv = m.spawn_program(
            "survivor", [ComputePhase(1.2e10, RATES)], affinity={0}
        )
        roam = m.spawn_program("roamer", [ComputePhase(3e9, RATES)])

        es = papi.create_eventset()
        papi.attach(es, surv)
        papi.add_event(es, "PAPI_TOT_INS")
        es_rapl = papi.create_eventset()
        papi.add_event(es_rapl, "rapl::RAPL_ENERGY_PKG", component="rapl")
        papi.start(es)
        papi.start(es_rapl)

        plan = FaultPlan.random(
            seed, system.topology, start_s=0.0, duration_s=0.35, n_faults=5
        )
        inj = system.inject_faults(plan)

        m.run_for(0.6)  # the whole fault window plus auto-restores
        m.run_until_done([surv, roam], max_s=30.0, strict=True)

        values = papi.stop(es)
        rapl_values = papi.stop(es_rapl)
        assert all(isinstance(v, float) for v in values + rapl_values)
        assert papi.last_status(es) in (0, PapiErrorCode.ECNFLCT)

        # Random plans are round trips: every offline is paired with a
        # later online, every dropout auto-restores.
        assert inj.pending == 0
        assert inj.skipped == []
        assert system.topology.offline_cpus() == []
        assert all(d.fault_mode is None for d in m.rapl.domains)
        assert m.thermal.zone.fault_mode is None

    def test_random_plans_are_reproducible_and_never_target_cpu0(self):
        system = System(MACHINE, dt_s=0.01)
        for seed in range(50):
            a = FaultPlan.random(seed, system.topology, n_faults=6)
            b = FaultPlan.random(seed, system.topology, n_faults=6)
            assert [(i.at_s, i.fault) for i in a.injections] == [
                (i.at_s, i.fault) for i in b.injections
            ]
            for inj in a.injections:
                if isinstance(inj.fault, (CpuOffline, CpuOnline)):
                    assert inj.fault.cpu != 0


class TestSurvivorExactMatch:
    """Hotplug within one DVFS cluster must not perturb other CPUs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_surviving_cpu_counters_match_fault_free_run(self, seed):
        rng = random.Random(seed)
        e_cpus = System(MACHINE, dt_s=0.01).topology.cpus_of_type("E-core")
        cpu_pair = set(rng.sample(e_cpus, 2))
        t_off = round(rng.uniform(0.05, 0.2), 3)
        t_on = round(t_off + rng.uniform(0.05, 0.2), 3)

        def run(with_fault):
            system = System(MACHINE, dt_s=0.001)
            m = system.machine
            surv = m.spawn_program(
                "surv", [ComputePhase(2e10, RATES)], affinity={0}
            )
            victim = m.spawn_program(
                "victim", [ComputePhase(2e10, RATES)], affinity=cpu_pair
            )
            fd = _open_counting(system, "cpu_core", surv.tid)
            m.run_for(0.01)  # settle placement; deterministic across runs
            start_cpu = victim.cpu
            if with_fault:
                plan = (
                    FaultPlan()
                    .at(t_off, CpuOffline(start_cpu))
                    .at(t_on, CpuOnline(start_cpu))
                )
                system.inject_faults(plan)
            intervals, victim_cpus = [], []
            for _ in range(10):
                m.run_for(0.05)
                intervals.append(system.perf.read(fd).value)
                victim_cpus.append(victim.cpu)
            return system, surv, victim, intervals, start_cpu, victim_cpus

        s_ok, surv_ok, victim_ok, iv_ok, cpu_ok, cpus_ok = run(with_fault=False)
        s_ch, surv_ch, victim_ch, iv_ch, cpu_ch, cpus_ch = run(with_fault=True)

        # Placement is deterministic, and the hotplug really displaced
        # the victim onto its sibling E-core.
        assert cpu_ok == cpu_ch
        assert all(c == cpu_ok for c in cpus_ok)
        assert any(c != cpu_ch for c in cpus_ch)

        # ...yet the surviving P-core thread saw the exact same world.
        # Digest equality covers the full snapshot surface of each
        # object — interval reads, every counter array, event clocks,
        # energies, frequencies — with zero tolerance.  (The whole
        # systems rightly differ: the victim migrated in one of them.)
        assert iv_ch == iv_ok
        assert state_digest(surv_ch) == state_digest(surv_ok)
        # RAPL: every domain's integrated energy and fault mode, plus
        # the cap scale, must match exactly.  (The capping controller's
        # smoothing EWMA is not compared: summing per-core power over a
        # changed online-core set reorders float additions, which can
        # wiggle the average by one ULP without any observable effect.)
        for dom_ok, dom_ch in zip(s_ok.machine.rapl.domains, s_ch.machine.rapl.domains):
            assert state_digest(dom_ch) == state_digest(dom_ok)
        assert s_ch.machine.rapl.scale == s_ok.machine.rapl.scale
        assert s_ch.machine.rapl.throttle_events == s_ok.machine.rapl.throttle_events
        assert state_digest(s_ch.machine.thermal) == state_digest(s_ok.machine.thermal)
        assert state_digest(s_ch.machine.governor) == state_digest(s_ok.machine.governor)
        # Same-cluster migration: even the victim loses no work.
        assert victim_ok.total_runtime_s == victim_ch.total_runtime_s


class TestDegradedSensors:
    def test_rapl_dropout_yields_nan_and_status_then_recovers(self):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        t = m.spawn_program("w", [ComputePhase(5e9, RATES)], affinity={0})
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "rapl::RAPL_ENERGY_PKG")
        papi.start(es)
        plan = FaultPlan().at(0.02, SensorDropout("rapl", "error", duration_s=0.05))
        system.inject_faults(plan)
        m.run_for(0.04)
        mid = papi.read(es)
        assert math.isnan(mid[0])
        assert papi.last_status(es) == PapiErrorCode.ECNFLCT
        m.run_for(0.06)  # restore fires
        end = papi.stop(es)
        assert not math.isnan(end[0]) and end[0] > 0
        assert papi.last_status(es) == 0

    def test_stale_rapl_freezes_sampler_energy(self):
        from repro.monitor.sampler import Sampler

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        sampler = Sampler(system, period_s=0.01)
        sampler.start()
        plan = FaultPlan().at(0.05, SensorDropout("rapl", "stale", duration_s=0.03))
        system.inject_faults(plan)
        m.run_for(0.12)
        trace = sampler.stop()
        # Stale window: consecutive identical energy readings.
        diffs = np.diff(np.asarray(trace.energy_j))
        assert (diffs == 0.0).any()
        # After restore the counter jumps forward and keeps growing.
        assert trace.energy_j[-1] > trace.energy_j[0]

    def test_thermal_error_gives_nan_temperature_samples(self):
        from repro.monitor.sampler import Sampler

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        sampler = Sampler(system, period_s=0.01)
        sampler.start()
        plan = FaultPlan().at(0.04, SensorDropout("thermal", "error", duration_s=0.03))
        system.inject_faults(plan)
        m.run_for(0.12)
        trace = sampler.stop()
        temps = np.asarray(trace.temp_c)
        assert np.isnan(temps).any()
        assert not np.isnan(temps[-1])  # recovered


class TestCounterStorm:
    def test_saturated_counter_clamps_at_width(self):
        from repro.kernel.perf.event import COUNTER_MAX

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        fd = _open_counting(system, "cpu_core", t.tid)
        plan = FaultPlan().at(0.02, CounterStorm())
        system.inject_faults(plan)
        m.run_for(0.05)
        rv = system.perf.read(fd)
        assert rv.value == COUNTER_MAX  # saturates, never wraps

    def test_saturation_does_not_flood_overflow_sampling(self):
        from repro.kernel.perf import PerfEventAttr
        from repro.kernel.perf.subsystem import PerfIoctl

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        ptype = system.perf.registry.by_name["cpu_core"].type
        fd = system.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0, sample_period=10_000_000),
            pid=t.tid,
            cpu=-1,
        )
        system.perf.ioctl(fd, PerfIoctl.ENABLE)
        plan = FaultPlan().at(0.02, CounterStorm())
        system.inject_faults(plan)
        m.run_for(0.05)
        ev = system.perf._event(fd)
        # The jump to 2^48 re-anchors the overflow threshold instead of
        # emitting ~2^34 samples.
        assert ev.lost_samples == 0
        assert len(ev.samples) < 1000


class TestSyscallStorms:
    def test_storm_outlasting_retries_degrades_not_raises(self):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        t = m.spawn_program("w", [ComputePhase(5e9, RATES)], affinity={0})
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        m.run_for(0.02)
        plan = FaultPlan().at(
            0.03, PerfSyscallStorm(errno_name="EBUSY", count=100, ops=("read",))
        )
        system.inject_faults(plan)
        m.run_for(0.02)
        mid = papi.read(es)
        assert all(math.isnan(v) for v in mid)
        assert papi.last_status(es) == PapiErrorCode.ECNFLCT
        system.perf._fault_budgets.clear()
        end = papi.stop(es)
        assert all(not math.isnan(v) for v in end)

    def test_conditional_injection_fires_on_predicate(self):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("w", [ComputePhase(5e9, RATES)], affinity={16, 17})
        plan = FaultPlan().when(
            lambda: t.total_runtime_s > 0.05, CpuOffline(16)
        ).when(
            lambda: t.total_runtime_s > 0.1, CpuOnline(16)
        )
        inj = system.inject_faults(plan)
        m.run_for(0.2)
        assert [type(f).__name__ for _, f in inj.fired] == [
            "CpuOffline",
            "CpuOnline",
        ]
        assert system.topology.offline_cpus() == []


class TestStrictTimeout:
    def test_stuck_thread_is_named_in_simtimeout(self):
        from repro.sim.workload import SpinPhase

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("wedged", [SpinPhase(until=lambda: False)], affinity={0})
        with pytest.raises(SimTimeout) as err:
            m.run_until_done([t], max_s=0.05, strict=True)
        assert "wedged" in str(err.value)
        assert err.value.stuck == [t]
        # Diagnosability: the exception pinpoints where the thread is
        # wedged (CPU + core type) and whether a checkpoint exists.
        (detail,) = err.value.stuck_details()
        assert detail["cpu"] == 0
        assert detail["core_type"] == "P-core"
        assert "cpu=0 [P-core]" in str(err.value)
        assert err.value.checkpoint_path is None
        assert "no checkpoint taken" in str(err.value)

    def test_simtimeout_reports_last_checkpoint(self, tmp_path):
        from repro.sim.workload import SpinPhase

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("wedged", [SpinPhase(until=lambda: False)])
        ckpt = str(tmp_path / "wedged.snap")
        system.save(ckpt)
        with pytest.raises(SimTimeout) as err:
            m.run_until_done([t], max_s=0.05, strict=True)
        assert err.value.checkpoint_path == ckpt
        assert ckpt in str(err.value)


class TestChaosCheckpoint:
    """Snapshots taken *mid-fault-storm* must restore bit-identically.

    The hardest checkpoint cases: a CPU hotplugged offline with its
    re-online still pending in the injector's heap, and an EBUSY
    syscall storm with a partially-drained retry budget — saved,
    restored in a **fresh process**, run to completion, and compared
    against the run that never stopped.
    """

    END_S = 0.6

    def _build(self):
        """Deterministic chaos scenario; returns (payload, es)."""
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        surv = m.spawn_program(
            "survivor", [ComputePhase(4e9, RATES)], affinity={0}
        )
        m.spawn_program("roamer", [ComputePhase(1.5e9, RATES)], affinity={16, 17})
        es = papi.create_eventset()
        papi.attach(es, surv)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        plan = (
            FaultPlan()
            .at(0.02, CpuOffline(16))
            .at(0.03, PerfSyscallStorm(errno_name="EBUSY", count=50, ops=("read",)))
            .at(0.05, SensorDropout("rapl", "stale", duration_s=0.05))
            .at(0.20, CpuOnline(16))
        )
        system.inject_faults(plan)
        payload = {"system": system, "papi": papi}
        return payload, es

    def _finish(self, payload):
        m = payload["system"].machine
        m.run_until_done(m.threads, max_s=30.0, strict=True)
        return state_digest(payload)

    def _restore_and_finish_in_fresh_process(self, ckpt_path):
        """Replays the tail of the run in a separate interpreter."""
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        driver = (
            "import sys\n"
            "from repro.checkpoint import load_object, state_digest\n"
            "payload = load_object(sys.argv[1])\n"
            "m = payload['system'].machine\n"
            "m.run_until_done(m.threads, max_s=30.0, strict=True)\n"
            "print(state_digest(payload))\n"
        )
        env = dict(os.environ, PYTHONPATH=src)
        out = subprocess.run(
            [sys.executable, "-c", driver, ckpt_path],
            capture_output=True,
            text=True,
            env=env,
        )
        assert out.returncode == 0, out.stderr
        return out.stdout.strip()

    @pytest.mark.parametrize(
        "snap_at_s, expect",
        [
            # cpu16 is offline, its CpuOnline still pending in the heap.
            (0.025, "mid-hotplug"),
            # the EBUSY budget is armed and partially drained by reads.
            (0.035, "mid-storm"),
        ],
    )
    def test_mid_fault_snapshot_restores_bit_identical(
        self, tmp_path, snap_at_s, expect
    ):
        payload, es = self._build()
        system, papi = payload["system"], payload["papi"]
        m = system.machine
        m.run_for(snap_at_s)
        if expect == "mid-hotplug":
            assert 16 in system.topology.offline_cpus()
        else:
            assert system.perf._fault_budgets  # storm in progress

        ckpt = str(tmp_path / f"{expect}.snap")
        save_object(payload, ckpt)

        # The run that never stopped (saving must not perturb it).
        straight = self._finish(payload)
        # Final PAPI counters for the explicit bit-identical check.
        straight_values = papi.stop(es)

        resumed = self._restore_and_finish_in_fresh_process(ckpt)
        assert resumed == straight

        # Same final counters when the restored run stops its eventset —
        # digest equality already implies it, but assert the user-facing
        # numbers directly too (the esid survives the snapshot).
        payload2 = load_object(ckpt)
        m2 = payload2["system"].machine
        m2.run_until_done(m2.threads, max_s=30.0, strict=True)
        resumed_values = payload2["papi"].stop(es)
        # Bitwise comparison: a mid-storm read can legitimately be NaN
        # (in both runs equally), and NaN != NaN under ==.
        import struct

        pack = lambda vs: [struct.pack("<d", v) for v in vs]
        assert pack(resumed_values) == pack(straight_values)
