"""Chaos sweep: seeded fault plans must degrade gracefully, never crash.

Two guarantees from the robustness issue:

* any seeded :meth:`FaultPlan.random` scenario completes without an
  uncaught exception — PAPI reads return NaN + ``PAPI_ECNFLCT`` style
  partial results at worst;
* counters on *surviving* CPUs exactly match a fault-free run: a
  same-cluster E-core hotplug perturbs neither the package power nor the
  DVFS state, so a P-core-pinned thread's counters must be bit-identical
  with and without the fault.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.faults import (
    CounterStorm,
    CpuOffline,
    CpuOnline,
    FaultPlan,
    PerfSyscallStorm,
    SensorDropout,
)
from repro.papi import Papi
from repro.papi.consts import PapiErrorCode
from repro.sim.engine import SimTimeout
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.3)
)


def _open_counting(system, pmu_name, tid, config=0x00C0):
    from repro.kernel.perf import PerfEventAttr
    from repro.kernel.perf.subsystem import PerfIoctl

    ptype = system.perf.registry.by_name[pmu_name].type
    fd = system.perf.perf_event_open(
        PerfEventAttr(type=ptype, config=config), pid=tid, cpu=-1
    )
    system.perf.ioctl(fd, PerfIoctl.ENABLE)
    return fd


class TestChaosSweep:
    """>= 20 seeded random scenarios, each a full stack exercise."""

    @pytest.mark.parametrize("seed", range(24))
    def test_seeded_plan_completes_without_exceptions(self, seed):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        surv = m.spawn_program(
            "survivor", [ComputePhase(1.2e10, RATES)], affinity={0}
        )
        roam = m.spawn_program("roamer", [ComputePhase(3e9, RATES)])

        es = papi.create_eventset()
        papi.attach(es, surv)
        papi.add_event(es, "PAPI_TOT_INS")
        es_rapl = papi.create_eventset()
        papi.add_event(es_rapl, "rapl::RAPL_ENERGY_PKG", component="rapl")
        papi.start(es)
        papi.start(es_rapl)

        plan = FaultPlan.random(
            seed, system.topology, start_s=0.0, duration_s=0.35, n_faults=5
        )
        inj = system.inject_faults(plan)

        m.run_for(0.6)  # the whole fault window plus auto-restores
        m.run_until_done([surv, roam], max_s=30.0, strict=True)

        values = papi.stop(es)
        rapl_values = papi.stop(es_rapl)
        assert all(isinstance(v, float) for v in values + rapl_values)
        assert papi.last_status(es) in (0, PapiErrorCode.ECNFLCT)

        # Random plans are round trips: every offline is paired with a
        # later online, every dropout auto-restores.
        assert inj.pending == 0
        assert inj.skipped == []
        assert system.topology.offline_cpus() == []
        assert all(d.fault_mode is None for d in m.rapl.domains)
        assert m.thermal.zone.fault_mode is None

    def test_random_plans_are_reproducible_and_never_target_cpu0(self):
        system = System(MACHINE, dt_s=0.01)
        for seed in range(50):
            a = FaultPlan.random(seed, system.topology, n_faults=6)
            b = FaultPlan.random(seed, system.topology, n_faults=6)
            assert [(i.at_s, i.fault) for i in a.injections] == [
                (i.at_s, i.fault) for i in b.injections
            ]
            for inj in a.injections:
                if isinstance(inj.fault, (CpuOffline, CpuOnline)):
                    assert inj.fault.cpu != 0


class TestSurvivorExactMatch:
    """Hotplug within one DVFS cluster must not perturb other CPUs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_surviving_cpu_counters_match_fault_free_run(self, seed):
        rng = random.Random(seed)
        e_cpus = System(MACHINE, dt_s=0.01).topology.cpus_of_type("E-core")
        cpu_pair = set(rng.sample(e_cpus, 2))
        t_off = round(rng.uniform(0.05, 0.2), 3)
        t_on = round(t_off + rng.uniform(0.05, 0.2), 3)

        def run(with_fault):
            system = System(MACHINE, dt_s=0.001)
            m = system.machine
            surv = m.spawn_program(
                "surv", [ComputePhase(2e10, RATES)], affinity={0}
            )
            victim = m.spawn_program(
                "victim", [ComputePhase(2e10, RATES)], affinity=cpu_pair
            )
            fd = _open_counting(system, "cpu_core", surv.tid)
            m.run_for(0.01)  # settle placement; deterministic across runs
            start_cpu = victim.cpu
            if with_fault:
                plan = (
                    FaultPlan()
                    .at(t_off, CpuOffline(start_cpu))
                    .at(t_on, CpuOnline(start_cpu))
                )
                system.inject_faults(plan)
            intervals, victim_cpus = [], []
            for _ in range(10):
                m.run_for(0.05)
                intervals.append(system.perf.read(fd).value)
                victim_cpus.append(victim.cpu)
            return system, surv, victim, intervals, start_cpu, victim_cpus

        s_ok, surv_ok, victim_ok, iv_ok, cpu_ok, cpus_ok = run(with_fault=False)
        s_ch, surv_ch, victim_ch, iv_ch, cpu_ch, cpus_ch = run(with_fault=True)

        # Placement is deterministic, and the hotplug really displaced
        # the victim onto its sibling E-core.
        assert cpu_ok == cpu_ch
        assert all(c == cpu_ok for c in cpus_ok)
        assert any(c != cpu_ch for c in cpus_ch)

        # ...yet the surviving P-core thread saw the exact same world:
        # interval reads, final counters, energy, frequency — all
        # bit-identical to the fault-free run.
        assert iv_ch == iv_ok
        for pmu in surv_ok.counters:
            assert np.array_equal(surv_ok.counters[pmu], surv_ch.counters[pmu])
        assert surv_ok.total_runtime_s == surv_ch.total_runtime_s
        assert s_ok.machine.rapl.package.energy_j == s_ch.machine.rapl.package.energy_j
        assert s_ok.machine.thermal.temp_c == s_ch.machine.thermal.temp_c
        assert s_ok.machine.governor.freq_mhz == s_ch.machine.governor.freq_mhz
        # Same-cluster migration: even the victim loses no work.
        assert victim_ok.total_runtime_s == victim_ch.total_runtime_s


class TestDegradedSensors:
    def test_rapl_dropout_yields_nan_and_status_then_recovers(self):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        t = m.spawn_program("w", [ComputePhase(5e9, RATES)], affinity={0})
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "rapl::RAPL_ENERGY_PKG")
        papi.start(es)
        plan = FaultPlan().at(0.02, SensorDropout("rapl", "error", duration_s=0.05))
        system.inject_faults(plan)
        m.run_for(0.04)
        mid = papi.read(es)
        assert math.isnan(mid[0])
        assert papi.last_status(es) == PapiErrorCode.ECNFLCT
        m.run_for(0.06)  # restore fires
        end = papi.stop(es)
        assert not math.isnan(end[0]) and end[0] > 0
        assert papi.last_status(es) == 0

    def test_stale_rapl_freezes_sampler_energy(self):
        from repro.monitor.sampler import Sampler

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        sampler = Sampler(system, period_s=0.01)
        sampler.start()
        plan = FaultPlan().at(0.05, SensorDropout("rapl", "stale", duration_s=0.03))
        system.inject_faults(plan)
        m.run_for(0.12)
        trace = sampler.stop()
        # Stale window: consecutive identical energy readings.
        diffs = np.diff(np.asarray(trace.energy_j))
        assert (diffs == 0.0).any()
        # After restore the counter jumps forward and keeps growing.
        assert trace.energy_j[-1] > trace.energy_j[0]

    def test_thermal_error_gives_nan_temperature_samples(self):
        from repro.monitor.sampler import Sampler

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        sampler = Sampler(system, period_s=0.01)
        sampler.start()
        plan = FaultPlan().at(0.04, SensorDropout("thermal", "error", duration_s=0.03))
        system.inject_faults(plan)
        m.run_for(0.12)
        trace = sampler.stop()
        temps = np.asarray(trace.temp_c)
        assert np.isnan(temps).any()
        assert not np.isnan(temps[-1])  # recovered


class TestCounterStorm:
    def test_saturated_counter_clamps_at_width(self):
        from repro.kernel.perf.event import COUNTER_MAX

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        fd = _open_counting(system, "cpu_core", t.tid)
        plan = FaultPlan().at(0.02, CounterStorm())
        system.inject_faults(plan)
        m.run_for(0.05)
        rv = system.perf.read(fd)
        assert rv.value == COUNTER_MAX  # saturates, never wraps

    def test_saturation_does_not_flood_overflow_sampling(self):
        from repro.kernel.perf import PerfEventAttr
        from repro.kernel.perf.subsystem import PerfIoctl

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("w", [ComputePhase(1e10, RATES)], affinity={0})
        ptype = system.perf.registry.by_name["cpu_core"].type
        fd = system.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0, sample_period=10_000_000),
            pid=t.tid,
            cpu=-1,
        )
        system.perf.ioctl(fd, PerfIoctl.ENABLE)
        plan = FaultPlan().at(0.02, CounterStorm())
        system.inject_faults(plan)
        m.run_for(0.05)
        ev = system.perf._event(fd)
        # The jump to 2^48 re-anchors the overflow threshold instead of
        # emitting ~2^34 samples.
        assert ev.lost_samples == 0
        assert len(ev.samples) < 1000


class TestSyscallStorms:
    def test_storm_outlasting_retries_degrades_not_raises(self):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        papi = Papi(system)
        t = m.spawn_program("w", [ComputePhase(5e9, RATES)], affinity={0})
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        m.run_for(0.02)
        plan = FaultPlan().at(
            0.03, PerfSyscallStorm(errno_name="EBUSY", count=100, ops=("read",))
        )
        system.inject_faults(plan)
        m.run_for(0.02)
        mid = papi.read(es)
        assert all(math.isnan(v) for v in mid)
        assert papi.last_status(es) == PapiErrorCode.ECNFLCT
        system.perf._fault_budgets.clear()
        end = papi.stop(es)
        assert all(not math.isnan(v) for v in end)

    def test_conditional_injection_fires_on_predicate(self):
        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("w", [ComputePhase(5e9, RATES)], affinity={16, 17})
        plan = FaultPlan().when(
            lambda: t.total_runtime_s > 0.05, CpuOffline(16)
        ).when(
            lambda: t.total_runtime_s > 0.1, CpuOnline(16)
        )
        inj = system.inject_faults(plan)
        m.run_for(0.2)
        assert [type(f).__name__ for _, f in inj.fired] == [
            "CpuOffline",
            "CpuOnline",
        ]
        assert system.topology.offline_cpus() == []


class TestStrictTimeout:
    def test_stuck_thread_is_named_in_simtimeout(self):
        from repro.sim.workload import SpinPhase

        system = System(MACHINE, dt_s=0.001)
        m = system.machine
        t = m.spawn_program("wedged", [SpinPhase(until=lambda: False)])
        with pytest.raises(SimTimeout) as err:
            m.run_until_done([t], max_s=0.05, strict=True)
        assert "wedged" in str(err.value)
        assert err.value.stuck == [t]
