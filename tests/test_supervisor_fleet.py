"""Chaos-fleet acceptance: the ISSUE 7 end-to-end bar.

A 16-job sweep on a worker pool with deterministic chaos (self-crashing
workers, stalls that force stuck-kills and migrations), a seeded-random
worker SIGKILL, and a supervisor SIGKILL mid-fleet — resumed, it must
produce results byte-identical to a calm uninterrupted fleet.  This
drives ``tools/resume_equivalence.py --soak``, the same entry point CI
runs, as a real subprocess.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EQUIV = os.path.join(REPO, "tools", "resume_equivalence.py")


def _journal_events(path):
    events = []
    with open(path, "rb") as fh:
        for line in fh.read().split(b"\n"):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError):
                break  # torn tail from the SIGKILL — expected debris
    return events


def test_soak_chaos_fleet_is_bit_identical(tmp_path):
    base = str(tmp_path / "soak")
    proc = subprocess.run(
        [sys.executable, EQUIV, base, "--soak"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"soak failed:\n--- stdout ---\n{proc.stdout}\n"
        f"--- stderr ---\n{proc.stderr}"
    )
    assert "PASS: 16 run(s) bit-identical" in proc.stdout
    assert "SIGKILLed worker" in proc.stdout
    assert "killed sweep mid-flight" in proc.stdout

    # The chaos actually happened: across the killed sweep's journal
    # (pre-kill + resumed appends), the stall injection forced at least
    # one stuck-kill that migrated, and the crash injection at least one
    # plain retry.
    events = _journal_events(os.path.join(base, "killed", "journal.jsonl"))
    stuck_exits = [
        e for e in events if e["type"] == "exit" and e.get("liveness") == "stuck"
    ]
    migrated = [e for e in events if e["type"] == "retry" and e.get("migrated")]
    assert stuck_exits, "no stuck worker was ever detected"
    assert migrated, "no migration ever happened"
    launches = [e for e in events if e["type"] == "launch"]
    slots = {e["slot"] for e in launches}
    assert len(slots) > 1, "fleet never used more than one pool slot"
    done = {e["run_id"] for e in events if e["type"] == "done"}
    assert len(done) == 16
