"""PAPI_overflow: sampling callbacks on (hybrid) EventSets."""

import pytest

from repro.papi import Papi, PapiError
from repro.papi.consts import PapiErrorCode
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


def _setup(system, names, cpu=None, instructions=2e6):
    papi = Papi(system)
    affinity = {cpu} if cpu is not None else None
    t = system.machine.spawn(
        SimThread("app", Program([ComputePhase(instructions, RATES)]), affinity=affinity)
    )
    es = papi.create_eventset()
    papi.attach(es, t)
    for name in names:
        papi.add_event(es, name)
    return papi, es, t


def test_handler_fires_per_threshold(raptor):
    p_cpu = raptor.topology.cpus_of_type("P-core")[0]
    papi, es, t = _setup(raptor, ["adl_glc::INST_RETIRED:ANY"], cpu=p_cpu)
    hits = []
    papi.overflow(es, "adl_glc::INST_RETIRED:ANY", 100_000, lambda e, s: hits.append(s))
    papi.start(es)
    raptor.machine.run_until_done([t], max_s=5)
    papi.stop(es)
    assert len(hits) == 20  # 2e6 / 1e5
    assert all(s.cpu == p_cpu for s in hits)


def test_derived_preset_overflows_on_both_core_types():
    """On a hybrid machine a preset's overflow follows the thread across
    core types — the measurement capability the paper's patch provides."""
    system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=12,
                    migrate_jitter=0.1, rebalance_jitter=0.1)
    papi, es, t = _setup(system, ["PAPI_TOT_INS"], instructions=2e7)
    hits = []
    papi.overflow(es, "PAPI_TOT_INS", 100_000, lambda e, s: hits.append(s))
    papi.start(es)
    system.machine.run_until_done([t], max_s=10)
    values = papi.stop(es)
    pmus = {s.pmu for s in hits}
    assert pmus == {"cpu_core", "cpu_atom"}
    # Roughly one overflow per threshold across the whole run.
    assert len(hits) == pytest.approx(values[0] / 100_000, abs=3)


def test_counts_still_correct_with_overflow(raptor):
    p_cpu = raptor.topology.cpus_of_type("P-core")[0]
    papi, es, t = _setup(
        raptor,
        ["adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD"],
        cpu=p_cpu,
    )
    papi.overflow(es, "adl_glc::INST_RETIRED:ANY", 50_000, lambda e, s: None)
    papi.start(es)
    raptor.machine.run_until_done([t], max_s=5)
    instr, cycles = papi.stop(es)
    assert instr == pytest.approx(2e6)
    assert cycles == pytest.approx(1e6)


def test_overflow_requires_member_event(raptor):
    papi, es, t = _setup(raptor, ["adl_glc::INST_RETIRED:ANY"])
    with pytest.raises(PapiError) as e:
        papi.overflow(es, "PAPI_TOT_CYC", 1000, lambda *_: None)
    assert e.value.code == PapiErrorCode.ENOEVNT


def test_overflow_rejected_while_running(raptor):
    papi, es, t = _setup(raptor, ["adl_glc::INST_RETIRED:ANY"])
    papi.start(es)
    with pytest.raises(PapiError) as e:
        papi.overflow(es, "adl_glc::INST_RETIRED:ANY", 1000, lambda *_: None)
    assert e.value.code == PapiErrorCode.EISRUN


def test_threshold_zero_disables(raptor):
    p_cpu = raptor.topology.cpus_of_type("P-core")[0]
    papi, es, t = _setup(raptor, ["adl_glc::INST_RETIRED:ANY"], cpu=p_cpu)
    hits = []
    papi.overflow(es, "adl_glc::INST_RETIRED:ANY", 10_000, lambda e, s: hits.append(s))
    papi.overflow(es, "adl_glc::INST_RETIRED:ANY", 0, lambda e, s: hits.append(s))
    papi.start(es)
    raptor.machine.run_until_done([t], max_s=5)
    papi.stop(es)
    assert hits == []


def test_rapl_event_cannot_overflow(raptor):
    papi, es, t = _setup(raptor, ["rapl::RAPL_ENERGY_PKG"])
    with pytest.raises(PapiError) as e:
        papi.overflow(es, "rapl::RAPL_ENERGY_PKG", 1000, lambda *_: None)
    assert e.value.code == PapiErrorCode.ECMP
