"""The C-flavoured API: a PAPI test program ported nearly line-for-line."""

import pytest

from repro.papi.capi import CApi, PAPI_NULL, PAPI_VER_CURRENT
from repro.papi.consts import PAPI_OK, PapiErrorCode
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


@pytest.fixture
def api(raptor):
    return CApi(raptor)


def _spawn(system, cpu=None):
    affinity = {cpu} if cpu is not None else None
    return system.machine.spawn(
        SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity=affinity)
    )


class TestInitialization:
    def test_version_handshake(self, api):
        assert api.PAPI_library_init(PAPI_VER_CURRENT) == PAPI_VER_CURRENT
        assert api.PAPI_is_initialized()

    def test_wrong_version_rejected(self, api):
        assert api.PAPI_library_init(0x05000000) == PapiErrorCode.EINVAL

    def test_use_before_init(self, api):
        es = [PAPI_NULL]
        assert api.PAPI_create_eventset(es) == PapiErrorCode.ENOINIT

    def test_shutdown(self, api):
        api.PAPI_library_init(PAPI_VER_CURRENT)
        api.PAPI_shutdown()
        assert not api.PAPI_is_initialized()


class TestPortedHybridTest:
    def test_papi_hybrid_c_style(self, raptor, api):
        """The §IV-F test written the way a C PAPI program would be."""
        assert api.PAPI_library_init(PAPI_VER_CURRENT) == PAPI_VER_CURRENT
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _spawn(raptor, cpu=p_cpu)

        eventset = [PAPI_NULL]
        assert api.PAPI_create_eventset(eventset) == PAPI_OK
        assert eventset[0] != PAPI_NULL
        assert api.PAPI_attach(eventset[0], t.tid) == PAPI_OK
        assert api.PAPI_add_named_event(
            eventset[0], "adl_glc::INST_RETIRED:ANY"
        ) == PAPI_OK
        assert api.PAPI_add_named_event(
            eventset[0], "adl_grt::INST_RETIRED:ANY"
        ) == PAPI_OK
        assert api.PAPI_num_events(eventset[0]) == 2

        assert api.PAPI_start(eventset[0]) == PAPI_OK
        raptor.machine.run_until_done([t], max_s=5)
        values = [0, 0]
        assert api.PAPI_stop(eventset[0], values) == PAPI_OK
        assert values[0] == pytest.approx(1e6)
        assert values[1] == 0

        assert api.PAPI_destroy_eventset(eventset) == PAPI_OK
        assert eventset[0] == PAPI_NULL

    def test_error_codes_not_exceptions(self, raptor, api):
        api.PAPI_library_init(PAPI_VER_CURRENT)
        assert api.PAPI_start(42) == PapiErrorCode.ENOEVST
        es = [PAPI_NULL]
        api.PAPI_create_eventset(es)
        assert api.PAPI_add_named_event(es[0], "NOPE::X") == PapiErrorCode.ENOEVNT
        assert api.PAPI_start(es[0]) == PapiErrorCode.EINVAL

    def test_accum_and_read(self, raptor, api):
        api.PAPI_library_init(PAPI_VER_CURRENT)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _spawn(raptor, cpu=p_cpu)
        es = [PAPI_NULL]
        api.PAPI_create_eventset(es)
        api.PAPI_attach(es[0], t.tid)
        api.PAPI_add_named_event(es[0], "adl_glc::INST_RETIRED:ANY")
        api.PAPI_start(es[0])
        raptor.machine.run_until_done([t], max_s=5)
        buf = [0]
        assert api.PAPI_accum(es[0], buf) == PAPI_OK
        assert buf[0] == pytest.approx(1e6)
        out = [0]
        assert api.PAPI_read(es[0], out) == PAPI_OK
        assert out[0] == 0  # accum reset the counts

    def test_short_output_buffer(self, raptor, api):
        api.PAPI_library_init(PAPI_VER_CURRENT)
        t = _spawn(raptor)
        es = [PAPI_NULL]
        api.PAPI_create_eventset(es)
        api.PAPI_attach(es[0], t.tid)
        api.PAPI_add_named_event(es[0], "adl_glc::INST_RETIRED:ANY")
        api.PAPI_add_named_event(es[0], "adl_grt::INST_RETIRED:ANY")
        api.PAPI_start(es[0])
        assert api.PAPI_read(es[0], [0]) == PapiErrorCode.EINVAL

    def test_attach_bad_tid(self, raptor, api):
        api.PAPI_library_init(PAPI_VER_CURRENT)
        es = [PAPI_NULL]
        api.PAPI_create_eventset(es)
        assert api.PAPI_attach(es[0], 999999) == PapiErrorCode.EINVAL


class TestMisc:
    def test_strerror(self):
        assert CApi.PAPI_strerror(PAPI_OK) == "No error"
        assert "not running" in CApi.PAPI_strerror(int(PapiErrorCode.ENOTRUN))
        assert CApi.PAPI_strerror(-9999) == "Unknown error code"

    def test_query_and_misc(self, raptor, api):
        api.PAPI_library_init(PAPI_VER_CURRENT)
        assert api.PAPI_query_named_event("PAPI_TOT_INS") == PAPI_OK
        assert (
            api.PAPI_query_named_event("PAPI_NOPE") == PapiErrorCode.ENOEVNT
        )
        assert api.PAPI_num_components() >= 2
        assert api.PAPI_get_real_usec() >= 0
