"""Tests for repro.analysis — the repro-lint static analyzer.

Each rule gets a good/bad fixture pair, plus suppression handling,
baseline round-trips, reporters, CLI exit codes, and the meta-test that
the live repository is lint-clean modulo its checked-in baseline.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, Severity, run_analysis
from repro.analysis.core import all_rules
from repro.analysis.report import render_human, render_json

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def lint(tmp_path: Path, relpath: str, source: str, only=None, baseline=None):
    """Write one fixture file into a scratch repo and analyze it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_analysis(
        tmp_path, paths=[relpath], only_rules=only, baseline=baseline
    )


def rule_ids(result):
    return sorted(f.rule for f in result.new_findings)


# -- determinism rules -------------------------------------------------------


class TestWallClock:
    BAD = """
        import time

        def elapsed():
            return time.time()
    """

    def test_bad(self, tmp_path):
        result = lint(tmp_path, "src/repro/sim/x.py", self.BAD)
        assert rule_ids(result) == ["DET-WALLCLOCK"]
        assert "time.time" in result.new_findings[0].message

    def test_datetime_now(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/hw/x.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert rule_ids(result) == ["DET-WALLCLOCK"]

    def test_good_sim_clock(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def elapsed(clock):
                return clock.now_s
            """,
        )
        assert result.new_findings == []

    def test_out_of_scope(self, tmp_path):
        """Wall-clock use outside the deterministic layers is fine."""
        result = lint(tmp_path, "tools/x.py", self.BAD, only=["DET-WALLCLOCK"])
        assert result.new_findings == []


class TestUnseededRandom:
    def test_module_rng_banned(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/kernel/x.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert rule_ids(result) == ["DET-RANDOM"]

    def test_os_urandom_banned(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/faults/x.py",
            """
            import os

            def token():
                return os.urandom(8)
            """,
        )
        assert rule_ids(result) == ["DET-RANDOM"]

    def test_numpy_global_rng_banned(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            import numpy as np

            def noise():
                return np.random.rand()
            """,
        )
        assert rule_ids(result) == ["DET-RANDOM"]

    def test_seeded_sources_allowed(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            import random
            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """,
        )
        assert result.new_findings == []


class TestHashOrderIteration:
    def test_for_over_set_literal(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def walk():
                for cpu in {0, 1, 2}:
                    print(cpu)
            """,
        )
        assert rule_ids(result) == ["DET-HASH-ITER"]

    def test_list_over_set_variable(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/kernel/x.py",
            """
            def snapshot(xs):
                online = set(xs)
                return list(online)
            """,
        )
        assert rule_ids(result) == ["DET-HASH-ITER"]

    def test_sorted_launders_order(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def walk(xs):
                online = set(xs)
                for cpu in sorted(online):
                    print(cpu)
                return sorted(online)
            """,
        )
        assert result.new_findings == []


class TestIdentityOrder:
    def test_key_id(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def order(threads):
                return sorted(threads, key=id)
            """,
        )
        assert rule_ids(result) == ["DET-ID-ORDER"]

    def test_lambda_wrapping_id(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def order(threads):
                threads.sort(key=lambda t: (id(t), t.weight))
            """,
        )
        assert rule_ids(result) == ["DET-ID-ORDER"]

    def test_stable_key_ok(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def order(threads):
                return sorted(threads, key=lambda t: t.tid)
            """,
        )
        assert result.new_findings == []


# -- snapshot-surface cross-check -------------------------------------------


SURFACE_GOOD = """
    from repro.checkpoint.surface import snapshot_surface

    @snapshot_surface(state=("a", "b"), note="test")
    class C:
        def __init__(self):
            self.a = 1
            self.b = 2
"""


class TestSnapshotSurface:
    def test_declared_surface_matches(self, tmp_path):
        result = lint(tmp_path, "src/repro/x.py", SURFACE_GOOD)
        assert result.new_findings == []

    def test_missing_state_declaration(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/x.py",
            """
            from repro.checkpoint.surface import snapshot_surface

            @snapshot_surface(note="test")
            class C:
                def __init__(self):
                    self.a = 1
            """,
        )
        assert rule_ids(result) == ["SURFACE-DECL"]

    def test_undeclared_attribute(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/x.py",
            """
            from repro.checkpoint.surface import snapshot_surface

            @snapshot_surface(state=("a",), note="test")
            class C:
                def __init__(self):
                    self.a = 1

                def mutate(self):
                    self.hidden = 3
            """,
        )
        assert rule_ids(result) == ["SURFACE-DECL"]
        assert "hidden" in result.new_findings[0].message

    def test_declared_but_never_assigned(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/x.py",
            """
            from repro.checkpoint.surface import snapshot_surface

            @snapshot_surface(state=("a", "ghost"), note="test")
            class C:
                def __init__(self):
                    self.a = 1
            """,
        )
        assert rule_ids(result) == ["SURFACE-DECL"]
        assert "ghost" in result.new_findings[0].message


# -- PAPI / perf contract rules ---------------------------------------------


class TestEventSetLifecycle:
    GOOD = """
        def run(papi, thread):
            es = papi.create_eventset()
            papi.attach(es, thread)
            papi.add_event(es, "PAPI_TOT_INS")
            papi.start(es)
            values = papi.stop(es)
            papi.destroy_eventset(es)
            return values
    """

    def test_full_lifecycle_clean(self, tmp_path):
        result = lint(tmp_path, "examples/x.py", self.GOOD)
        assert result.new_findings == []

    def test_read_before_start(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(papi):
                es = papi.create_eventset()
                papi.add_event(es, "PAPI_TOT_INS")
                values = papi.read(es)
                papi.destroy_eventset(es)
                return values
            """,
        )
        assert "PAPI-LIFECYCLE" in rule_ids(result)
        assert any(
            "before it is ever started" in f.message for f in result.new_findings
        )

    def test_double_start(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(papi):
                es = papi.create_eventset()
                papi.add_event(es, "PAPI_TOT_INS")
                papi.start(es)
                papi.start(es)
                papi.stop(es)
                papi.destroy_eventset(es)
            """,
        )
        assert any("started twice" in f.message for f in result.new_findings)

    def test_leak(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(papi):
                es = papi.create_eventset()
                papi.add_event(es, "PAPI_TOT_INS")
                papi.start(es)
                return papi.stop(es)
            """,
        )
        assert any("never destroyed" in f.message for f in result.new_findings)

    def test_use_after_destroy(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(papi):
                es = papi.create_eventset()
                papi.destroy_eventset(es)
                papi.start(es)
            """,
        )
        assert any("after destroy" in f.message for f in result.new_findings)

    def test_branch_merges_conservatively(self, tmp_path):
        """A handle destroyed on only one branch is not a must-violation."""
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(papi, early):
                es = papi.create_eventset()
                papi.add_event(es, "PAPI_TOT_INS")
                if early:
                    papi.destroy_eventset(es)
                    return None
                papi.start(es)
                out = papi.stop(es)
                papi.destroy_eventset(es)
                return out
            """,
        )
        assert result.new_findings == []

    def test_escaped_handle_not_tracked(self, tmp_path):
        """Handles stored into containers leave the analysis silently."""
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(papi, registry):
                es = papi.create_eventset()
                registry["es"] = es
            """,
        )
        assert result.new_findings == []


class TestPerfFdLeak:
    def test_leak(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(perf, attr):
                fd = perf.perf_event_open(attr, pid=0, cpu=-1)
                perf.ioctl(fd, 1)
            """,
        )
        assert rule_ids(result) == ["PAPI-FD-LEAK"]
        assert "never closed" in result.new_findings[0].message

    def test_closed_is_clean(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(perf, attr):
                fd = perf.perf_event_open(attr, pid=0, cpu=-1)
                perf.ioctl(fd, 1)
                perf.close(fd)
            """,
        )
        assert result.new_findings == []

    def test_double_close(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def run(perf, attr):
                fd = perf.perf_event_open(attr, pid=0, cpu=-1)
                perf.close(fd)
                perf.close(fd)
            """,
        )
        assert any("closed twice" in f.message for f in result.new_findings)


class TestPmuMix:
    def test_cross_core_type_mix_flagged(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def setup(papi, es):
                papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
                papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
            """,
        )
        assert rule_ids(result) == ["PAPI-PMU-MIX"]
        finding = result.new_findings[0]
        assert finding.severity is Severity.WARNING
        assert "adl_glc" in finding.message and "adl_grt" in finding.message

    def test_single_pmu_clean(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def setup(papi, es):
                papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
                papi.add_event(es, "adl_glc::CPU_CLK_UNHALTED:THREAD")
            """,
        )
        assert result.new_findings == []

    def test_arm_biglittle_mix_flagged(self, tmp_path):
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            def setup(papi, es):
                papi.add_event(es, "arm_a72::INST_RETIRED")
                papi.add_event(es, "arm_a53::INST_RETIRED")
            """,
        )
        assert rule_ids(result) == ["PAPI-PMU-MIX"]

    def test_module_constant_resolution(self, tmp_path):
        """Event lists bound to module-level literals are seen through."""
        result = lint(
            tmp_path,
            "examples/x.py",
            """
            P_EVENT = "adl_glc::INST_RETIRED:ANY"
            E_EVENT = "adl_grt::INST_RETIRED:ANY"

            def setup(papi, es):
                papi.add_event(es, P_EVENT)
                papi.add_event(es, E_EVENT)
            """,
        )
        assert rule_ids(result) == ["PAPI-PMU-MIX"]


# -- suppressions ------------------------------------------------------------


class TestSuppressions:
    def test_line_suppression_honored_and_counted(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            import time

            def elapsed():
                return time.time()  # repro-lint: disable=DET-WALLCLOCK
            """,
        )
        assert result.new_findings == []
        assert [f.rule for f in result.suppressed] == ["DET-WALLCLOCK"]

    def test_disable_all(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            import time

            def elapsed():
                return time.time()  # repro-lint: disable=all
            """,
        )
        assert result.new_findings == []
        assert len(result.suppressed) == 1

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        result = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            import time

            def elapsed():
                return time.time()  # repro-lint: disable=DET-RANDOM
            """,
        )
        assert rule_ids(result) == ["DET-WALLCLOCK"]
        assert result.suppressed == []


# -- baseline ----------------------------------------------------------------


BASELINE_BAD = """
    import time

    def elapsed():
        return time.time()
"""


class TestBaseline:
    def test_round_trip(self, tmp_path):
        result = lint(tmp_path, "src/repro/sim/x.py", BASELINE_BAD)
        assert len(result.new_findings) == 1

        path = tmp_path / "lint-baseline.json"
        Baseline.from_findings(result.new_findings).save(path)
        loaded = Baseline.load(path)
        assert all(loaded.contains(f) for f in result.new_findings)

        again = run_analysis(
            tmp_path, paths=["src/repro/sim/x.py"], baseline=loaded
        )
        assert again.new_findings == []
        assert [f.rule for f in again.baselined] == ["DET-WALLCLOCK"]
        assert not again.failed(strict=True)

    def test_fingerprint_survives_line_drift(self, tmp_path):
        result = lint(tmp_path, "src/repro/sim/x.py", BASELINE_BAD)
        baseline = Baseline.from_findings(result.new_findings)

        # Same defect, shifted down by a comment block: still baselined.
        drifted = lint(
            tmp_path,
            "src/repro/sim/x.py",
            "# moved\n# down\n" + textwrap.dedent(BASELINE_BAD),
            baseline=baseline,
        )
        assert drifted.new_findings == []
        assert len(drifted.baselined) == 1

    def test_stale_entries_reported(self, tmp_path):
        result = lint(tmp_path, "src/repro/sim/x.py", BASELINE_BAD)
        baseline = Baseline.from_findings(result.new_findings)

        fixed = lint(
            tmp_path,
            "src/repro/sim/x.py",
            """
            def elapsed(clock):
                return clock.now_s
            """,
            baseline=baseline,
        )
        assert fixed.new_findings == []
        assert len(fixed.stale_baseline) == 1
        assert fixed.stale_baseline[0]["rule"] == "DET-WALLCLOCK"

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"tool": "other", "version": 1}))
        with pytest.raises(ValueError):
            Baseline.load(path)


# -- reporters ---------------------------------------------------------------


class TestReporters:
    def test_json_report_shape(self, tmp_path):
        result = lint(tmp_path, "src/repro/sim/x.py", BASELINE_BAD)
        payload = json.loads(render_json(result, strict=True))
        assert payload["failed"] is True
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET-WALLCLOCK"
        assert finding["path"] == "src/repro/sim/x.py"
        assert finding["fingerprint"]

    def test_human_report_verdict(self, tmp_path):
        bad = lint(tmp_path, "src/repro/sim/x.py", BASELINE_BAD)
        text = render_human(bad, strict=True)
        assert "FAILED" in text and "DET-WALLCLOCK" in text

        good = lint(tmp_path, "src/repro/sim/y.py", "X = 1\n")
        assert "repro-lint: ok" in render_human(good, strict=True)

    def test_parse_error_always_fails(self, tmp_path):
        result = lint(tmp_path, "src/repro/sim/x.py", "def broken(:\n")
        assert result.parse_errors
        assert result.failed(strict=False) and result.failed(strict=True)


# -- CLI ---------------------------------------------------------------------


def run_cli(*args: str, cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_strict_clean_on_live_repo(self):
        proc = run_cli("--strict", "--root", str(REPO_ROOT), cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_nonzero_on_bad_fixture(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        proc = run_cli("--strict", "--root", str(tmp_path), cwd=REPO_ROOT)
        assert proc.returncode == 1
        assert "DET-WALLCLOCK" in proc.stdout

    def test_unknown_rule_is_usage_error(self):
        proc = run_cli(
            "--rule", "NO-SUCH-RULE", "--root", str(REPO_ROOT), cwd=REPO_ROOT
        )
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = run_cli("--list-rules", cwd=REPO_ROOT)
        assert proc.returncode == 0
        for rule_id in (
            "DET-WALLCLOCK",
            "DET-RANDOM",
            "DET-HASH-ITER",
            "DET-ID-ORDER",
            "SURFACE-DECL",
            "PAPI-LIFECYCLE",
            "PAPI-FD-LEAK",
            "PAPI-PMU-MIX",
        ):
            assert rule_id in proc.stdout


# -- the live repository ----------------------------------------------------


class TestLiveRepo:
    def test_repo_clean_modulo_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = run_analysis(REPO_ROOT, baseline=baseline)
        assert result.parse_errors == []
        assert result.new_findings == [], [
            f.render() for f in result.new_findings
        ]
        assert result.stale_baseline == []

    def test_all_snapshot_surfaces_statically_declared(self):
        """Every @snapshot_surface class passes the static cross-check."""
        result = run_analysis(
            REPO_ROOT, paths=["src/repro"], only_rules=["SURFACE-DECL"]
        )
        assert result.new_findings == []

        # The static check covers the same classes the runtime registry
        # sees: every registered surface carries a non-empty state tuple.
        import repro.system  # noqa: F401  (imports the whole stack)
        import repro.faults.injector  # noqa: F401
        import repro.monitor.sampler  # noqa: F401
        from repro.checkpoint.surface import SNAPSHOT_SURFACES

        assert len(SNAPSHOT_SURFACES) >= 14
        for name, surface in SNAPSHOT_SURFACES.items():
            assert surface["state"], f"{name} declares an empty state surface"

    def test_rule_registry_complete(self):
        assert {r.id for r in all_rules()} >= {
            "DET-WALLCLOCK",
            "DET-RANDOM",
            "DET-HASH-ITER",
            "DET-ID-ORDER",
            "SURFACE-DECL",
            "PAPI-LIFECYCLE",
            "PAPI-FD-LEAK",
            "PAPI-PMU-MIX",
        }


# -- regression: the lifecycle/fd leaks this linter caught -------------------


class TestLeakRegressions:
    """The analyzer found real leaks; these pin the fixes."""

    FIXED_FILES = [
        "src/repro/experiments/overhead.py",
        "src/repro/workloads/guided.py",
        "examples/overflow_profiling.py",
        "benchmarks/test_ablations.py",
    ]

    def test_fixed_files_stay_clean(self):
        result = run_analysis(
            REPO_ROOT,
            paths=self.FIXED_FILES,
            only_rules=["PAPI-LIFECYCLE", "PAPI-FD-LEAK"],
        )
        assert result.new_findings == [], [
            f.render() for f in result.new_findings
        ]

    def test_measurement_releases_kernel_resources(self):
        """The fixed pattern actually frees eventsets and fds at runtime."""
        from repro.papi import Papi
        from repro.sim.task import Program, SimThread
        from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
        from repro.system import System

        system = System("raptor-lake-i7-13700", dt_s=1e-4)
        papi = Papi(system, mode="hybrid")
        t = system.machine.spawn(
            SimThread(
                "app",
                Program([ComputePhase(1e5, constant_rates(PhaseRates(ipc=2.0)))]),
                affinity={0},
            )
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        system.machine.run_until_done([t], max_s=2.0)
        papi.stop(es)
        papi.destroy_eventset(es)

        assert not papi._eventsets
        assert all(ev.closed for ev in system.perf._fds.values())


# -- toolchain config (ruff / mypy ride-alongs) ------------------------------


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src/repro", "tools", "examples", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    proc = subprocess.run(
        ["mypy"], cwd=REPO_ROOT, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
