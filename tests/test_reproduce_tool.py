"""The one-command reproduction driver."""

from repro.tools import reproduce


def test_quick_reproduction_report(tmp_path):
    out = tmp_path / "report.md"
    rc = reproduce.main(["--quick", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    # Every artifact section is present.
    for heading in (
        "Table I —", "Table IV —", "Table II —", "Table III —",
        "Figure 1 —", "Figure 2 —", "Figure 3 —", "Figure 4 —",
        "§IV-F —", "§V-5 —", "Extension — energy efficiency",
    ):
        assert heading in text, heading
    assert "ALL SHAPE CLAIMS HOLD" in text
    assert "FAIL" not in text
