"""Unit tests for the libpfm4 reproduction."""

import pytest

from repro.hw.eventcodes import CODES_BY_PFM_PMU
from repro.pfmlib import Pfmlib, PfmError, parse_event_string
from repro.pfmlib.events import PfmEvent
from repro.pfmlib.tables import ALL_TABLES


class TestParser:
    @pytest.mark.parametrize(
        "text,pmu,event,attrs",
        [
            ("INST_RETIRED", None, "INST_RETIRED", ()),
            ("inst_retired:any", None, "INST_RETIRED", ("ANY",)),
            ("adl_glc::INST_RETIRED:ANY", "adl_glc", "INST_RETIRED", ("ANY",)),
            ("ADL_GRT::CPU_CLK_UNHALTED:REF_TSC", "adl_grt", "CPU_CLK_UNHALTED", ("REF_TSC",)),
            (" arm_a72::INST_RETIRED ", "arm_a72", "INST_RETIRED", ()),
        ],
    )
    def test_valid(self, text, pmu, event, attrs):
        p = parse_event_string(text)
        assert (p.pmu, p.event, p.attrs) == (pmu, event, attrs)

    @pytest.mark.parametrize(
        "text", ["", "::EVENT", "pmu::", "EV::extra::x", "EV:", ":ATTR", "9bad::EV"]
    )
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_event_string(text)

    def test_canonical_roundtrip(self):
        p = parse_event_string("adl_glc::INST_RETIRED:ANY")
        assert parse_event_string(p.canonical()) == p


class TestEventTables:
    def test_event_umask_defaults(self):
        e = PfmEvent("X", "desc", {"A": 1, "B": 2})
        assert e.default_umask == "A"
        assert e.code() == 1
        assert e.code("B") == 2
        with pytest.raises(KeyError):
            e.code("C")

    def test_event_needs_umasks(self):
        with pytest.raises(ValueError):
            PfmEvent("X", "desc", {})

    def test_tables_agree_with_kernel_codes(self):
        """libpfm4 tables and kernel decode tables transcribe the same
        vendor manuals — every pfm code must be kernel-decodable."""
        for pfm_name, codes in CODES_BY_PFM_PMU.items():
            table = ALL_TABLES[pfm_name]
            for event in table.events.values():
                for umask, code in event.umasks.items():
                    assert code in codes, (
                        f"{pfm_name}::{event.name}:{umask} code {code:#x} "
                        "unknown to the kernel"
                    )

    def test_topdown_only_in_glc(self):
        assert "TOPDOWN" in ALL_TABLES["adl_glc"].events
        assert "TOPDOWN" not in ALL_TABLES["adl_grt"].events


class TestDetection:
    def test_raptor_hybrid_detection(self, raptor):
        pfm = Pfmlib(raptor)
        names = [t.name for t in pfm.active]
        assert "adl_glc" in names and "adl_grt" in names
        assert [t.name for t in pfm.default_pmus()] == ["adl_glc", "adl_grt"]

    def test_homogeneous_single_default(self, xeon):
        pfm = Pfmlib(xeon)
        assert [t.name for t in pfm.default_pmus()] == ["skx"]

    def test_arm_upstream_bug_boot_pmu_only(self, orangepi):
        """Without the paper's patch only the boot CPU's PMU appears."""
        pfm = Pfmlib(orangepi, arm_multi_pmu_patch=False)
        assert [t.name for t in pfm.default_pmus()] == ["arm_a53"]

    def test_arm_patched_detects_both(self, orangepi):
        pfm = Pfmlib(orangepi)
        assert [t.name for t in pfm.default_pmus()] == ["arm_a53", "arm_a72"]

    def test_arm_a72_table_needs_its_patch(self, orangepi):
        pfm = Pfmlib(orangepi, arm_a72_patch=False)
        assert [t.name for t in pfm.default_pmus()] == ["arm_a53"]

    def test_three_types_detected(self, dynamiq):
        pfm = Pfmlib(dynamiq)
        assert len(pfm.default_pmus()) == 3

    def test_rapl_table_only_with_rapl(self, raptor, orangepi):
        assert any(t.name == "rapl" for t in Pfmlib(raptor).active)
        assert not any(t.name == "rapl" for t in Pfmlib(orangepi).active)

    def test_inactive_pmu_lookup(self, raptor):
        pfm = Pfmlib(raptor)
        with pytest.raises(PfmError, match="not active"):
            pfm.pmu_by_name("arm_a53")
        with pytest.raises(PfmError, match="unknown"):
            pfm.pmu_by_name("nonexistent")


class TestLookupAndEncoding:
    def test_qualified_lookup(self, raptor):
        pfm = Pfmlib(raptor)
        info = pfm.find_event("adl_grt::INST_RETIRED:ANY")
        assert info.pmu.name == "adl_grt"
        assert info.config == 0x00C0

    def test_unqualified_matches_all_core_pmus(self, raptor):
        pfm = Pfmlib(raptor)
        matches = pfm.find_all_matches("INST_RETIRED:ANY")
        assert [m.pmu.name for m in matches] == ["adl_glc", "adl_grt"]

    def test_unqualified_first_match_order(self, raptor):
        pfm = Pfmlib(raptor)
        assert pfm.find_event("INST_RETIRED").pmu.name == "adl_glc"

    def test_topdown_resolves_only_on_glc(self, raptor):
        pfm = Pfmlib(raptor)
        matches = pfm.find_all_matches("TOPDOWN:SLOTS")
        assert [m.pmu.name for m in matches] == ["adl_glc"]

    def test_unknown_event(self, raptor):
        pfm = Pfmlib(raptor)
        with pytest.raises(PfmError):
            pfm.find_event("NO_SUCH_EVENT")
        with pytest.raises(PfmError):
            pfm.find_event("adl_glc::INST_RETIRED:BOGUS_MASK")

    def test_encoding_produces_kernel_attr(self, raptor):
        pfm = Pfmlib(raptor)
        attr, info = pfm.get_os_event_encoding("adl_grt::INST_RETIRED:ANY")
        assert attr.type == raptor.perf.registry.by_name["cpu_atom"].type
        assert attr.config == 0x00C0

    def test_encoding_on_acpi_firmware(self, orangepi_acpi):
        """PMU names differ under ACPI; encoding still resolves."""
        pfm = Pfmlib(orangepi_acpi)
        attr, info = pfm.get_os_event_encoding("arm_a72::INST_RETIRED")
        big_cpus = orangepi_acpi.topology.cpus_of_type("big")
        pmu = orangepi_acpi.perf.registry.by_type[attr.type]
        assert pmu.cpus == big_cpus

    def test_list_events(self, raptor):
        pfm = Pfmlib(raptor)
        events = list(pfm.list_events())
        assert "adl_glc::TOPDOWN:SLOTS" in events
        assert "adl_grt::INST_RETIRED:ANY" in events
        glc_only = list(pfm.list_events("adl_glc"))
        assert all(e.startswith("adl_glc::") for e in glc_only)
