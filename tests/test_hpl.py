"""Unit tests for the HPL workload model and runner."""

import pytest

from repro.hpl import (
    HplConfig,
    VARIANTS,
    beta_problem_size,
    hpl_flops,
    hpl_steps,
    parse_dat,
    run_hpl,
    to_dat,
    tune_hpl,
)
from repro.hpl.dat import PAPER_RAPTOR_LAKE
from repro.system import System


class TestDat:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HplConfig(n=0, nb=64)
        with pytest.raises(ValueError):
            HplConfig(n=100, nb=128)
        with pytest.raises(ValueError):
            HplConfig(n=1000, nb=100, p=0)

    def test_roundtrip(self):
        cfg = HplConfig(n=57024, nb=192, p=1, q=1)
        assert parse_dat(to_dat(cfg)) == cfg

    def test_paper_config(self):
        assert PAPER_RAPTOR_LAKE.n == 57024
        assert PAPER_RAPTOR_LAKE.nb == 192
        assert PAPER_RAPTOR_LAKE.p == PAPER_RAPTOR_LAKE.q == 1

    def test_memory_usage(self):
        # N=57024 doubles: ~24 GiB of the 32 GiB machine.
        gib = PAPER_RAPTOR_LAKE.memory_bytes() / (1 << 30)
        assert 20 < gib < 32

    def test_n_steps(self):
        assert HplConfig(n=1000, nb=100).n_steps == 10
        assert HplConfig(n=1001, nb=100).n_steps == 11


class TestModel:
    def test_flop_count_formula(self):
        n = 1000
        assert hpl_flops(n) == pytest.approx(2 / 3 * n**3 + 1.5 * n**2)

    def test_steps_conserve_flops(self):
        cfg = HplConfig(n=4096, nb=128)
        steps = hpl_steps(cfg)
        assert len(steps) == cfg.n_steps
        total = sum(s.total_flops for s in steps)
        assert total == pytest.approx(hpl_flops(cfg.n), rel=1e-12)

    def test_update_work_shrinks(self):
        steps = hpl_steps(HplConfig(n=4096, nb=128))
        updates = [s.update_flops for s in steps]
        assert updates[0] > updates[len(updates) // 2] > updates[-2]

    def test_panel_small_relative_to_update(self):
        steps = hpl_steps(HplConfig(n=8192, nb=128))
        assert sum(s.panel_flops for s in steps) < 0.05 * sum(
            s.update_flops for s in steps
        )


class TestTuning:
    def test_beta_problem_size(self):
        # 32 GiB at beta=0.8: sqrt(0.8*32GiB/8) ~ 58572, floored to NB=192.
        n = beta_problem_size(32, 0.80, 192)
        assert n % 192 == 0
        assert 55000 < n < 59000

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            beta_problem_size(32, 1.5, 192)
        with pytest.raises(ValueError):
            beta_problem_size(0.0001, 0.8, 256)

    def test_paper_n_reachable(self):
        """The paper's N=57024 is the beta=0.76 point for NB=192."""
        candidates = {
            beta_problem_size(32, b / 100, 192) for b in range(70, 86)
        }
        assert 57024 in candidates

    def test_sweep_shape(self):
        calls = []

        def fake_run(cfg):
            calls.append(cfg)
            return float(cfg.nb)  # NB=256 "wins"

        result = tune_hpl(32, fake_run, scale=0.05)
        assert len(result.cells) == 16
        assert result.best.nb == 256
        assert "Gflop/s" in result.table()


class TestVariants:
    def test_known_variants(self):
        assert set(VARIANTS) == {"openblas", "intel"}
        assert VARIANTS["intel"].dynamic_fraction == 1.0
        assert VARIANTS["openblas"].dynamic_fraction < 0.5

    def test_intel_more_efficient_on_both_core_types(self, raptor):
        for ct in raptor.topology.core_types:
            intel = VARIANTS["intel"].profile.effective_flops_per_cycle(ct)
            openblas = VARIANTS["openblas"].profile.effective_flops_per_cycle(ct)
            assert intel > openblas
            assert intel <= ct.flops_per_cycle

    def test_missrates_match_table3_inputs(self, raptor):
        p, e = raptor.topology.core_types
        for name, miss_p, miss_e in (("openblas", 0.86, 0.0005), ("intel", 0.64, 0.0003)):
            prof = VARIANTS[name].profile
            assert prof.rates(p).llc_miss_rate == pytest.approx(miss_p)
            assert prof.rates(e).llc_miss_rate == pytest.approx(miss_e)

    def test_unknown_microarch_without_default_raises(self):
        from repro.hpl.variants import DgemmProfile
        from repro.hw.machines import _raptor_cove

        prof = DgemmProfile(
            base_eff={"other": 1.0},
            llc_refs_per_instr={"default": 0.001},
            llc_miss_rate={"default": 0.1},
            scalar_overhead={"default": 0.1},
        )
        with pytest.raises(KeyError):
            prof.rates(_raptor_cove())


class TestRunner:
    def test_small_run_completes(self):
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        r = run_hpl(system, HplConfig(n=2304, nb=192), variant="intel")
        assert r.gflops > 0
        assert r.wall_s > 0
        assert r.energy_j > 0
        assert sum(r.fp_ops.values()) == pytest.approx(hpl_flops(2304), rel=0.02)

    def test_unknown_variant(self):
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        with pytest.raises(ValueError, match="unknown HPL variant"):
            run_hpl(system, HplConfig(n=1024, nb=128), variant="mkl")

    def test_empty_cpu_list(self):
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        with pytest.raises(ValueError):
            run_hpl(system, HplConfig(n=1024, nb=128), cpus=[])

    def test_counters_by_core_type(self):
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        primary = system.topology.primary_threads()
        r = run_hpl(system, HplConfig(n=2304, nb=192), variant="intel", cpus=primary)
        assert set(r.instructions) == {"cpu_core", "cpu_atom"}
        assert 0 < r.instruction_share("cpu_core") < 1
        assert r.llc_miss_rate("cpu_core") > r.llc_miss_rate("cpu_atom")

    def test_single_core_run(self):
        system = System("orangepi-800", dt_s=0.005)
        r = run_hpl(system, HplConfig(n=1024, nb=128), cpus=[0])
        assert r.gflops > 0
        assert set(r.instructions) == {"armv8_cortex_a53"}

    def test_openblas_spins_more_than_intel(self):
        def spin(variant):
            system = System("raptor-lake-i7-13700", dt_s=0.005)
            # Large enough that scheduling imbalance (not chunk-granularity
            # noise) dominates barrier waiting.
            r = run_hpl(
                system,
                HplConfig(n=13824, nb=192),
                variant=variant,
                cpus=system.topology.primary_threads(),
            )
            return r.spin_time_s / r.wall_s

        assert spin("openblas") > spin("intel")

    def test_settle_before_run(self):
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        system.machine.thermal.temp_c = 70.0
        run_hpl(system, HplConfig(n=1152, nb=192), settle_temp_c=35.0)
        # The run started only after cooling below 35 C; with a short run
        # the temperature cannot have recovered past the start point much.
        assert system.machine.thermal.temp_c < 70.0
