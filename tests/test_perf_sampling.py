"""Sampling (perf record) support in the kernel perf layer."""

import pytest

from repro.kernel.perf import PerfEventAttr
from repro.kernel.perf.event import SAMPLE_BUFFER_CAP
from repro.kernel.perf.subsystem import PerfIoctl
from repro.monitor import PerfRecord
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


def _sampling_fd(system, pmu_name, tid, period):
    ptype = system.perf.registry.by_name[pmu_name].type
    fd = system.perf.perf_event_open(
        PerfEventAttr(type=ptype, config=0x00C0, sample_period=period),
        pid=tid,
        cpu=-1,
    )
    system.perf.ioctl(fd, PerfIoctl.ENABLE)
    return fd


class TestKernelSampling:
    def test_sample_count_matches_period(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e7, RATES)]), affinity={p_cpu})
        )
        fd = _sampling_fd(raptor, "cpu_core", t.tid, period=100_000)
        raptor.machine.run_until_done([t], max_s=5)
        samples = raptor.perf._event(fd).read_samples()
        assert len(samples) == 100  # 1e7 / 1e5
        assert all(s.tid == t.tid for s in samples)
        assert all(s.pmu == "cpu_core" for s in samples)
        # Timestamps are monotone non-decreasing.
        times = [s.time_s for s in samples]
        assert times == sorted(times)

    def test_samples_tag_the_cpu(self, raptor):
        e_cpu = raptor.topology.cpus_of_type("E-core")[2]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={e_cpu})
        )
        fd = _sampling_fd(raptor, "cpu_atom", t.tid, period=50_000)
        raptor.machine.run_until_done([t], max_s=5)
        samples = raptor.perf._event(fd).read_samples()
        assert samples
        assert {s.cpu for s in samples} == {e_cpu}

    def test_no_samples_on_foreign_core(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        fd = _sampling_fd(raptor, "cpu_atom", t.tid, period=10_000)
        raptor.machine.run_until_done([t], max_s=5)
        assert raptor.perf._event(fd).read_samples() == []

    def test_read_samples_drains(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        fd = _sampling_fd(raptor, "cpu_core", t.tid, period=10_000)
        raptor.machine.run_until_done([t], max_s=5)
        ev = raptor.perf._event(fd)
        assert len(ev.read_samples()) == 100
        assert ev.read_samples() == []

    def test_buffer_overflow_drops(self, raptor):
        """A tiny period overruns the ring buffer; drops are counted."""
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e9, RATES)]), affinity={p_cpu})
        )
        fd = _sampling_fd(raptor, "cpu_core", t.tid, period=1_000)
        raptor.machine.run_until_done([t], max_s=10)
        ev = raptor.perf._event(fd)
        assert len(ev.samples) == SAMPLE_BUFFER_CAP
        assert ev.lost_samples == 1e9 / 1e3 - SAMPLE_BUFFER_CAP

    def test_counting_event_takes_no_samples(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        ptype = raptor.perf.registry.by_name["cpu_core"].type
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        raptor.perf.ioctl(fd, PerfIoctl.ENABLE)
        raptor.machine.run_until_done([t], max_s=5)
        assert raptor.perf._event(fd).read_samples() == []


class TestPerfRecord:
    def test_hybrid_profile_shares(self):
        """perf-record style profiling shows where a migrating thread ran."""
        system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=9,
                        migrate_jitter=0.1, rebalance_jitter=0.1)
        t = system.machine.spawn(SimThread("app", Program([ComputePhase(5e7, RATES)])))
        rec = PerfRecord(system, period=50_000)
        rec.attach([t])
        system.machine.run_until_done([t], max_s=10)
        report = rec.report()
        rec.close()
        by_pmu = report.by_pmu()
        assert set(by_pmu) == {"cpu_core", "cpu_atom"}
        # Sample shares approximate the instruction split.
        total_instr = t.counters_total()[1]
        p_share_truth = t.counters["cpu_core"][1] / total_instr
        assert report.share("cpu_core") == pytest.approx(p_share_truth, abs=0.05)
        assert "samples" in report.render()

    def test_pinned_profile_single_pmu(self, raptor):
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(2e6, RATES)]), affinity={e_cpu})
        )
        rec = PerfRecord(raptor, period=20_000)
        rec.attach([t])
        raptor.machine.run_until_done([t], max_s=5)
        report = rec.report()
        rec.close()
        assert report.by_pmu() == {"cpu_atom": 100}
        assert report.by_cpu() == {e_cpu: 100}
