"""Worker pool: backoff, concurrency, liveness kills, migration, drain.

Backoff tests drive the pool on an injected fake clock/sleep pair — no
real ``time.sleep`` anywhere in the scheduling path.  Liveness tests use
real subprocess workers wedged by the deterministic ``stall_at_s`` /
``spawner`` fixtures in :mod:`repro.supervisor.runs`.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.supervisor import (
    DONE,
    FAILED,
    PENDING,
    RunSpec,
    Supervisor,
    backoff_delay,
    default_worker_count,
)

#: Small, fast HPL point used throughout.
HPL_PARAMS = {"n": 1000, "nb": 128, "slice_s": 0.02, "dt_s": 0.01}


def _journal_events(sup, etype=None):
    with open(sup.journal_path) as fh:
        events = [json.loads(line) for line in fh]
    if etype is not None:
        events = [e for e in events if e["type"] == etype]
    return events


def _result(sup, run_id):
    with open(os.path.join(sup.out_dir, run_id, "result.json")) as fh:
        return json.load(fh)


class FakeTime:
    """Injectable clock/sleep: sleeping advances the clock, instantly."""

    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


class TestBackoffDelay:
    def test_pure_function_of_inputs(self):
        a = backoff_delay(0.5, 2, "run-a", jitter_seed=7)
        assert a == backoff_delay(0.5, 2, "run-a", jitter_seed=7)
        assert a != backoff_delay(0.5, 2, "run-b", jitter_seed=7)
        assert a != backoff_delay(0.5, 2, "run-a", jitter_seed=8)

    def test_exponential_base_without_jitter(self):
        delays = [backoff_delay(0.5, k, "r", jitter_seed=None) for k in (1, 2, 3)]
        assert delays == [0.5, 1.0, 2.0]

    def test_jitter_bounded_at_quarter(self):
        for attempt in (1, 2, 3):
            base = 0.5 * 2 ** (attempt - 1)
            d = backoff_delay(0.5, attempt, "r", jitter_seed=1)
            assert base <= d <= base * 1.25

    def test_zero_base_stays_zero(self):
        assert backoff_delay(0.0, 3, "r", jitter_seed=1) == 0.0

    def test_default_worker_count_bounds(self):
        n = default_worker_count()
        assert 1 <= n <= 8


class TestBackoffSchedule:
    def test_retries_follow_the_deterministic_schedule(self, tmp_path):
        """A run crashing on attempts 1 and 2 re-enters the queue at
        exactly clock + backoff_delay(...) — verified on a fake clock, so
        the whole backoff wait costs zero wall time."""
        ft = FakeTime()
        sup = Supervisor(
            str(tmp_path / "sweep"),
            max_attempts=3,
            backoff_s=0.5,
            jitter_seed=11,
            # The fake clock races ahead of real worker progress, so
            # wall-clock liveness must be off for this test.
            wall_timeout_s=None,
            stuck_after_s=1e9,
            checkpoint_every_s=10.0,  # pin checkpoint before the crash point
            workers=1,
            log=lambda m: None,
            clock=ft.clock,
            sleep=ft.sleep,
        )
        manifest = sup.run(
            [
                RunSpec(
                    "crashy",
                    "flaky-hpl",
                    dict(HPL_PARAMS, crash_at_s=0.08, crash_on_attempts=[1, 2]),
                )
            ]
        )
        assert manifest.runs["crashy"].status == DONE
        assert manifest.runs["crashy"].attempts == 3

        retries = _journal_events(sup, "retry")
        assert [r["next_attempt"] for r in retries] == [2, 3]
        # Journaled delays are exactly the pure-function schedule.
        expected = [backoff_delay(0.5, k, "crashy", jitter_seed=11) for k in (1, 2)]
        assert [r["delay_s"] for r in retries] == expected
        assert all(d > 0.5 * 2 ** k / 2 for k, d in enumerate(expected, 1))

        # The backoff waits happened on the fake clock: the pool slept
        # (virtually) at least the scheduled delays, in zero wall time.
        assert sum(ft.slept) >= sum(expected)
        launches = _journal_events(sup, "launch")
        assert len(launches) == 3


class TestConcurrency:
    def test_jobs_spread_across_slots(self, tmp_path):
        sup = Supervisor(
            str(tmp_path / "sweep"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=2,
            log=lambda m: None,
        )
        specs = [
            RunSpec(f"job{i}", "hpl", dict(HPL_PARAMS, n=1000 + 100 * i))
            for i in range(4)
        ]
        manifest = sup.run(specs)
        assert all(rec.status == DONE for rec in manifest.runs.values())
        slots = {e["slot"] for e in _journal_events(sup, "launch")}
        assert slots == {0, 1}
        assert sup.metrics.counters[("fleet.launch", None)] == 4.0
        assert sup.metrics.counters[("fleet.done", None)] == 4.0


class TestLiveness:
    def test_stuck_worker_is_migrated_and_converges(self, tmp_path):
        """A worker heartbeating with frozen sim time is stuck: killed,
        requeued on a different slot, resumed from checkpoint, and the
        final result is bit-identical to a run that never stalled."""
        sup = Supervisor(
            str(tmp_path / "sweep"),
            max_attempts=3,
            backoff_s=0.0,
            wall_timeout_s=120.0,
            stuck_after_s=0.6,
            checkpoint_every_s=0.04,
            workers=2,
            log=lambda m: None,
        )
        manifest = sup.run(
            [
                RunSpec("steady", "hpl", dict(HPL_PARAMS)),
                RunSpec(
                    "staller",
                    "hpl",
                    dict(HPL_PARAMS, stall_at_s=0.08, stall_on_attempts=[1]),
                ),
            ]
        )
        staller = manifest.runs["staller"]
        assert staller.status == DONE
        assert staller.attempts == 2
        assert staller.migrations == 1
        assert staller.last_error is None
        # The stuck verdict and the migration are journaled.
        exits = [
            e
            for e in _journal_events(sup, "exit")
            if e["run_id"] == "staller"
        ]
        assert exits[0]["liveness"] == "stuck"
        assert exits[0]["error"]["type"] == "StuckWorker"
        retries = [
            e
            for e in _journal_events(sup, "retry")
            if e["run_id"] == "staller"
        ]
        assert retries[0]["migrated"] is True
        # Migrated to a different slot.
        launches = [
            e
            for e in _journal_events(sup, "launch")
            if e["run_id"] == "staller"
        ]
        assert len(launches) == 2
        assert launches[1]["slot"] != launches[0]["slot"]
        assert launches[1]["resume_from"]  # from checkpoint, not scratch
        assert sup.metrics.counters[("fleet.migration", None)] == 1.0
        # Bit-identical convergence despite the stall + migration.
        assert (
            _result(sup, "staller")["state_digest"]
            == _result(sup, "steady")["state_digest"]
        )

    def test_timeout_kill_takes_the_whole_process_group(self, tmp_path):
        """Zombie-window regression: a worker that spawned a helper and
        wedged is killed as a *group*, so the helper dies with it."""
        sup = Supervisor(
            str(tmp_path / "sweep"),
            max_attempts=1,
            backoff_s=0.0,
            wall_timeout_s=120.0,
            stuck_after_s=0.5,
            workers=1,
            log=lambda m: None,
        )
        manifest = sup.run([RunSpec("wedge", "spawner", {})])
        rec = manifest.runs["wedge"]
        assert rec.status == FAILED
        assert rec.last_error["type"] == "StuckWorker"

        child_pid = json.load(
            open(os.path.join(sup.out_dir, "wedge", "child.json"))
        )["pid"]
        # The helper must be gone; poll briefly for the reparent+reap.
        deadline = time.time() + 10.0
        while time.time() < deadline:
            try:
                os.kill(child_pid, 0)
            except ProcessLookupError:
                break  # dead — the group kill took it
            time.sleep(0.05)
        else:
            os.kill(child_pid, 9)  # clean up before failing the test
            raise AssertionError(
                f"helper child {child_pid} survived the group kill"
            )


class TestDrain:
    def test_drain_preempts_and_resume_converges(self, tmp_path):
        """SIGTERM path: drain mid-run → worker checkpoints and exits
        preempted (no attempt burned) → --resume finishes the run
        bit-identical to an uninterrupted control run."""
        control = Supervisor(
            str(tmp_path / "control"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=lambda m: None,
        )
        big = dict(HPL_PARAMS, n=20000)
        control.run([RunSpec("big", "hpl", big)])
        digest = _result(control, "big")["state_digest"]

        sup = Supervisor(
            str(tmp_path / "sweep"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=lambda m: None,
        )
        timer = threading.Timer(0.6, sup.request_drain)
        timer.start()
        try:
            manifest = sup.run([RunSpec("big", "hpl", big)])
        finally:
            timer.cancel()
        assert sup.drained
        rec = manifest.runs["big"]
        assert rec.status == PENDING
        assert rec.attempts == 0  # preemption refunded the attempt
        assert rec.checkpoint_path and os.path.exists(rec.checkpoint_path)
        preempts = _journal_events(sup, "preempted")
        assert preempts and preempts[0]["checkpoint_path"]
        assert _journal_events(sup, "drain")

        sup2 = Supervisor(
            str(tmp_path / "sweep"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=lambda m: None,
        )
        manifest2 = sup2.run([RunSpec("big", "hpl", big)], resume=True)
        rec2 = manifest2.runs["big"]
        assert rec2.status == DONE
        assert rec2.attempts == 1  # the preempted attempt was free
        launches = _journal_events(sup2, "launch")
        assert launches[-1]["resume_from"]  # continued from the checkpoint
        assert _result(sup2, "big")["state_digest"] == digest
