"""Unit tests for CPUID / MIDR identification (§IV-B mechanisms)."""

import pytest

from repro.hw.cpuid import ArmMidr, CpuidEmulator, CPUID_LEAF_FMS, CPUID_LEAF_HYBRID
from repro.hw.machines import (
    INTEL_CORE_TYPE_ATOM,
    INTEL_CORE_TYPE_CORE,
    MIDR_PART_CORTEX_A53,
    MIDR_PART_CORTEX_A72,
    homogeneous_xeon,
    orangepi_800,
    raptor_lake_i7_13700,
)


@pytest.fixture
def raptor_cpuid():
    return CpuidEmulator(raptor_lake_i7_13700())


def test_hybrid_flag_set_on_raptor(raptor_cpuid):
    assert raptor_cpuid.is_hybrid()


def test_hybrid_flag_clear_on_xeon():
    assert not CpuidEmulator(homogeneous_xeon()).is_hybrid()


def test_leaf_1a_distinguishes_core_types(raptor_cpuid):
    spec = raptor_lake_i7_13700()
    p_cpu = spec.topology.cpus_of_type("P-core")[0]
    e_cpu = spec.topology.cpus_of_type("E-core")[0]
    assert raptor_cpuid.core_type(p_cpu) == INTEL_CORE_TYPE_CORE
    assert raptor_cpuid.core_type(e_cpu) == INTEL_CORE_TYPE_ATOM


def test_leaf_1_identical_across_core_types(raptor_cpuid):
    """The /proc/cpuinfo pitfall, at the cpuid level."""
    spec = raptor_lake_i7_13700()
    p_cpu = spec.topology.cpus_of_type("P-core")[0]
    e_cpu = spec.topology.cpus_of_type("E-core")[0]
    assert raptor_cpuid.cpuid(p_cpu, CPUID_LEAF_FMS) == raptor_cpuid.cpuid(
        e_cpu, CPUID_LEAF_FMS
    )


def test_cpuid_not_available_on_arm():
    emu = CpuidEmulator(orangepi_800())
    assert not emu.is_x86()
    with pytest.raises(NotImplementedError):
        emu.cpuid(0, CPUID_LEAF_HYBRID)


def test_midr_distinguishes_arm_cores():
    emu = CpuidEmulator(orangepi_800())
    assert emu.midr(0).part == MIDR_PART_CORTEX_A53   # cpu0 is LITTLE
    assert emu.midr(4).part == MIDR_PART_CORTEX_A72   # cpu4 is big


def test_midr_not_available_on_x86():
    emu = CpuidEmulator(raptor_lake_i7_13700())
    with pytest.raises(NotImplementedError):
        emu.midr(0)


def test_midr_roundtrip():
    m = ArmMidr(implementer=0x41, part=0xD08, variant=2, revision=3)
    assert ArmMidr.from_value(m.value) == m


def test_vendor_leaf(raptor_cpuid):
    r = raptor_cpuid.cpuid(0, 0)
    # "Genu" "ineI" "ntel" packed into ebx/edx/ecx.
    assert r.ebx == 0x756E6547
    assert r.edx == 0x49656E69
    assert r.ecx == 0x6C65746E
