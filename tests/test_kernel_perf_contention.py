"""Software clock events and counter contention (NMI-watchdog effect)."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf import PerfEventAttr
from repro.kernel.perf.attr import PerfType, SwConfig
from repro.kernel.perf.subsystem import PerfIoctl
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestClockEvents:
    def test_task_clock_reports_runtime_ns(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e7, RATES)]), affinity={p_cpu})
        )
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=PerfType.SOFTWARE, config=SwConfig.TASK_CLOCK),
            pid=t.tid, cpu=-1,
        )
        raptor.perf.ioctl(fd, PerfIoctl.ENABLE)
        raptor.machine.run_until_done([t], max_s=5)
        ns = raptor.perf.read(fd).value
        assert ns == pytest.approx(t.total_runtime_s * 1e9, rel=1e-6)
        assert ns > 0

    def test_cpu_clock_resets_with_baseline(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread(
                "app",
                Program([ComputePhase(1e6, RATES), ComputePhase(1e6, RATES)]),
                affinity={p_cpu},
            )
        )
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=PerfType.SOFTWARE, config=SwConfig.CPU_CLOCK),
            pid=t.tid, cpu=-1,
        )
        raptor.perf.ioctl(fd, PerfIoctl.ENABLE)
        raptor.machine.run_until(lambda: t.counters_total()[1] >= 1e6, max_s=5)
        raptor.perf.ioctl(fd, PerfIoctl.RESET)
        raptor.machine.run_until_done([t], max_s=5)
        # Only the second phase's runtime since the reset.
        assert raptor.perf.read(fd).value < t.total_runtime_s * 1e9 * 0.75


class TestCounterContention:
    def test_reservation_shrinks_group_capacity(self, raptor):
        """With the NMI watchdog holding counters, a group that used to
        fit no longer opens — a failure users hit on real machines."""
        glc = raptor.perf.registry.by_name["cpu_core"]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]))
        )
        budget = glc.n_counters + glc.n_fixed
        raptor.perf.reserve_counters("cpu_core", budget - 2)

        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=glc.type, config=0x00C0), pid=t.tid, cpu=-1
        )
        raptor.perf.perf_event_open(
            PerfEventAttr(type=glc.type, config=0x003C),
            pid=t.tid, cpu=-1, group_fd=leader,
        )
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(
                PerfEventAttr(type=glc.type, config=0x00C4),
                pid=t.tid, cpu=-1, group_fd=leader,
            )
        assert e.value.kernel_errno == Errno.EINVAL

    def test_reservation_forces_multiplexing(self, raptor):
        """Standalone events that fit an idle PMU get multiplexed once
        the watchdog steals counters."""
        glc = raptor.perf.registry.by_name["cpu_core"]
        raptor.perf.reserve_counters("cpu_core", glc.n_counters + glc.n_fixed - 1)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(5e7, RATES)]), affinity={p_cpu})
        )
        fds = []
        for _ in range(2):
            fd = raptor.perf.perf_event_open(
                PerfEventAttr(type=glc.type, config=0x00C0), pid=t.tid, cpu=-1
            )
            raptor.perf.ioctl(fd, PerfIoctl.ENABLE)
            fds.append(fd)
        raptor.machine.run_until_done([t], max_s=5)
        readings = [raptor.perf.read(fd) for fd in fds]
        # Only one counter available: the two events time-share it.
        assert all(rv.time_running_ns < rv.time_enabled_ns for rv in readings)
        total_scaled = sum(rv.scaled_value() for rv in readings)
        assert total_scaled == pytest.approx(2 * 5e7, rel=0.3)

    def test_reservation_bounds_checked(self, raptor):
        with pytest.raises(ValueError):
            raptor.perf.reserve_counters("cpu_core", 99)
        with pytest.raises(ValueError):
            raptor.perf.reserve_counters("cpu_core", -1)
        with pytest.raises(KeyError):
            raptor.perf.reserve_counters("no_such_pmu", 1)
