"""Unit tests for core-type descriptors and the power curve."""

import pytest

from repro.hw.coretype import ArchEvent, CoreType, PowerCoefficients
from repro.hw.machines import _gracemont, _raptor_cove, _cortex_a53, _cortex_a72


def test_frequency_range_validated():
    with pytest.raises(ValueError, match="frequency range"):
        CoreType(
            name="bad",
            microarch="x",
            vendor="intel",
            pmu_name="cpu",
            pfm_pmu="skx",
            smt=1,
            capacity=1024,
            min_freq_mhz=3000,
            base_freq_mhz=2000,
            max_freq_mhz=4000,
            ipc=3.0,
            flops_per_cycle=8.0,
            branch_misp_rate=0.01,
            llc_miss_penalty_cycles=200.0,
            l1d_kib=32,
            l2_kib=512,
            power=PowerCoefficients(1.0, 0.6, 0.1, 0.1),
        )


def test_capacity_validated():
    with pytest.raises(ValueError, match="capacity"):
        CoreType(
            name="bad",
            microarch="x",
            vendor="intel",
            pmu_name="cpu",
            pfm_pmu="skx",
            smt=1,
            capacity=2048,
            min_freq_mhz=1000,
            base_freq_mhz=2000,
            max_freq_mhz=4000,
            ipc=3.0,
            flops_per_cycle=8.0,
            branch_misp_rate=0.01,
            llc_miss_penalty_cycles=200.0,
            l1d_kib=32,
            l2_kib=512,
            power=PowerCoefficients(1.0, 0.6, 0.1, 0.1),
        )


def test_pcore_supports_topdown_ecore_does_not():
    """The paper's example: top-down events exist only on P-cores."""
    p, e = _raptor_cove(), _gracemont()
    assert p.supports_event(ArchEvent.TOPDOWN_SLOTS)
    assert not e.supports_event(ArchEvent.TOPDOWN_SLOTS)
    # Common events exist on both.
    for ev in (ArchEvent.INSTRUCTIONS, ArchEvent.CYCLES, ArchEvent.LLC_MISSES):
        assert p.supports_event(ev)
        assert e.supports_event(ev)


def test_intel_hybrid_shares_family_model_stepping():
    """P and E cores cannot be told apart by family/model/stepping."""
    p, e = _raptor_cove(), _gracemont()
    assert (p.x86_family, p.x86_model, p.x86_stepping) == (
        e.x86_family,
        e.x86_model,
        e.x86_stepping,
    )


def test_arm_parts_differ():
    big, little = _cortex_a72(), _cortex_a53()
    assert big.midr_part != little.midr_part


def test_power_monotonic_in_frequency():
    p = _raptor_cove().power
    freqs = [0.8, 1.5, 2.5, 3.5, 4.5, 5.1]
    powers = [p.core_power(f, 1.0) for f in freqs]
    assert powers == sorted(powers)
    assert powers[0] > 0


def test_idle_power_is_leakage_only():
    p = _raptor_cove().power
    assert p.core_power(3.0, 0.0) == pytest.approx(p.leak_w)


def test_freq_for_power_inverts_curve():
    ct = _raptor_cove()
    for f_target in (1.0, 2.5, 4.0):
        w = ct.power.core_power(f_target, 1.0)
        f = ct.power.freq_for_power(w, 1.0, ct.min_freq_ghz, ct.max_freq_ghz)
        assert f == pytest.approx(f_target, rel=1e-3)


def test_freq_for_power_clamps():
    ct = _raptor_cove()
    assert ct.power.freq_for_power(1e6, 1.0, ct.min_freq_ghz, ct.max_freq_ghz) == ct.max_freq_ghz
    assert ct.power.freq_for_power(0.0, 1.0, ct.min_freq_ghz, ct.max_freq_ghz) == ct.min_freq_ghz
    # Idle cores are unconstrained.
    assert ct.power.freq_for_power(0.0, 0.0, ct.min_freq_ghz, ct.max_freq_ghz) == ct.max_freq_ghz


def test_peak_gflops():
    p = _raptor_cove()
    assert p.peak_gflops(5.0) == pytest.approx(80.0)
