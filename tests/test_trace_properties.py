"""Trace invariants under a 16-seed randomized sweep.

Each seed runs a jittered multi-thread workload with a counting PAPI
EventSet, periodic reads, and a RAPL sensor dropout, then checks the
structural invariants any consumer of the trace may rely on:

* timestamps are non-decreasing (the ring preserves emission order);
* per-event counter samples are monotonic: value, enabled and running
  never decrease, and enabled >= running at every sample;
* scheduler in/out events alternate per thread, and every migration is
  bracketed — its ``from_cpu`` matches the thread's most recent
  switch-out and a switch-in to ``to_cpu`` follows immediately;
* RAPL energy samples never decrease, even across sensor dropouts
  (trace samples carry ground-truth energy, not the faulted reading).
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, SensorDropout
from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

MACHINE = "raptor-lake-i7-13700"
RATES = PhaseRates(
    ipc=2.0,
    flops_per_instr=0.5,
    llc_refs_per_instr=0.01,
    llc_miss_rate=0.3,
    l2_refs_per_instr=0.05,
    l2_miss_rate=0.2,
)
SEEDS = range(16)


def _traced_run(seed: int):
    rates = constant_rates(RATES)
    system = System(
        MACHINE, dt_s=0.01, seed=seed, migrate_jitter=0.04, trace=True
    )
    papi = Papi(system)
    threads = [
        system.machine.spawn(
            SimThread(f"w{i}", Program([ComputePhase(4e9, rates)]))
        )
        for i in range(3)
    ]
    es = papi.create_eventset()
    papi.attach(es, threads[0])
    papi.add_event(es, "PAPI_TOT_INS")
    system.inject_faults(
        FaultPlan().at(0.1, SensorDropout("rapl", mode="stale", duration_s=0.1))
    )
    papi.start(es)
    for _ in range(8):
        system.machine.run_for(0.05)
        papi.read(es)
    papi.stop(es)
    tracer = system.tracer
    assert tracer.dropped == 0, "ring overflowed; invariants would be partial"
    return tracer.events_list()


@pytest.fixture(scope="module", params=SEEDS)
def events(request):
    return _traced_run(request.param)


def test_timestamps_non_decreasing(events):
    ts = [ev[0] for ev in events]
    assert all(a <= b for a, b in zip(ts, ts[1:]))


def test_counter_samples_monotonic_and_enabled_ge_running(events):
    last: dict[int, tuple] = {}
    reads = [ev for ev in events if ev[1] == "perf" and ev[2] == "read"]
    assert reads, "sweep produced no perf read samples"
    for _, _, _, _, _, args in reads:
        eid = args["id"]
        sample = (args["value"], args["enabled_ns"], args["running_ns"])
        assert args["enabled_ns"] >= args["running_ns"]
        prev = last.get(eid)
        if prev is not None:
            assert sample[0] >= prev[0], f"event {eid} count went backwards"
            assert sample[1] >= prev[1], f"event {eid} enabled went backwards"
            assert sample[2] >= prev[2], f"event {eid} running went backwards"
        last[eid] = sample


def test_migrations_bracketed_by_switch_events(events):
    sched = [ev for ev in events if ev[1] == "sched" and ev[3] is not None]
    by_tid: dict[int, list] = {}
    for ev in sched:
        by_tid.setdefault(ev[3], []).append(ev)
    saw_migrate = False
    for tid, evs in by_tid.items():
        running_on = None   # cpu while switched in, None while out
        last_out_cpu = None
        for i, (_, _, name, _, cpu, args) in enumerate(evs):
            if name == "switch_in":
                assert running_on is None, f"tid {tid}: double switch_in"
                running_on = cpu
            elif name == "switch_out":
                assert running_on == cpu, f"tid {tid}: switch_out from wrong cpu"
                running_on = None
                last_out_cpu = cpu
            elif name == "migrate":
                saw_migrate = True
                assert running_on is None, f"tid {tid}: migrate while running"
                assert args["from_cpu"] == last_out_cpu, (
                    f"tid {tid}: migrate from_cpu {args['from_cpu']} != last "
                    f"switch_out cpu {last_out_cpu}"
                )
                nxt = evs[i + 1]
                assert nxt[2] == "switch_in" and nxt[4] == args["to_cpu"], (
                    f"tid {tid}: migrate not followed by switch_in to target"
                )
    assert saw_migrate, "jittered sweep produced no migrations"


def test_rapl_energy_non_decreasing_across_dropouts(events):
    samples = [ev[5] for ev in events if ev[1] == "rapl" and ev[2] == "energy"]
    assert len(samples) >= 2, "sweep produced too few RAPL samples"
    for domain in ("package_j", "cores_j", "dram_j"):
        vals = [s[domain] for s in samples]
        assert all(a <= b for a, b in zip(vals, vals[1:])), (
            f"{domain} decreased across samples"
        )
