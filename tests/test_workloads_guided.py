"""Job profiles and the counter-guided scheduling study."""

import pytest

from repro.hw.machines import _gracemont, _raptor_cove
from repro.workloads import JOB_PROFILES, make_job_phases
from repro.workloads.guided import (
    default_job_batch,
    profile_job_missrates,
    render,
    run_guided_study,
    run_placement,
)


class TestJobProfiles:
    def test_compute_jobs_favour_pcores(self):
        p, e = _raptor_cove(), _gracemont()
        dgemm = JOB_PROFILES["dgemm-kernel"]
        chase = JOB_PROFILES["pointer-chase"]
        # Compute-bound work gains much more from a P-core than
        # memory-bound work does.
        assert dgemm.speed_ratio_big_over_little(p, e) > 2.0
        assert chase.speed_ratio_big_over_little(p, e) < 1.6

    def test_rates_positive_everywhere(self):
        for ct in (_raptor_cove(), _gracemont()):
            for profile in JOB_PROFILES.values():
                r = profile.rates(ct)
                assert r.ipc > 0
                assert 0 <= r.llc_miss_rate <= 1

    def test_memory_jobs_stall(self):
        p = _raptor_cove()
        assert (
            JOB_PROFILES["pointer-chase"].rates(p).ipc
            < JOB_PROFILES["integer-hot-loop"].rates(p).ipc / 3
        )

    def test_make_phases(self):
        phases = make_job_phases(JOB_PROFILES["streaming-scan"], 1e6)
        assert len(phases) == 1
        assert phases[0].remaining == 1e6


class TestProfiling:
    def test_measured_missrates_match_profiles(self):
        jobs = default_job_batch("raptor-lake-i7-13700", per_profile=1)
        profile_job_missrates("raptor-lake-i7-13700", jobs)
        for job in jobs:
            assert job.measured_miss_rate == pytest.approx(
                job.profile.llc_miss_rate, rel=0.05
            )

    def test_batch_oversubscribes(self):
        jobs = default_job_batch("raptor-lake-i7-13700", per_profile=8)
        assert len(jobs) == 8 * len(JOB_PROFILES) == 32


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_guided_study(per_profile=6, target_seconds=0.1)

    def test_guided_beats_blind_policies(self, study):
        guided = study.outcomes["guided"].makespan_s
        assert guided < study.outcomes["naive"].makespan_s
        assert guided < study.outcomes["inverted"].makespan_s
        assert study.speedup("inverted") > 1.15

    def test_guided_uses_least_energy(self, study):
        energies = {p: o.energy_j for p, o in study.outcomes.items()}
        assert energies["guided"] == min(energies.values())

    def test_guided_sends_memory_jobs_to_ecores(self, study):
        assignments = study.outcomes["guided"].assignments
        for job in study.jobs:
            target = assignments[job.name]
            if job.profile.name in ("pointer-chase", "streaming-scan"):
                assert target == "E-core", job.name
            if job.profile.name == "dgemm-kernel":
                assert target == "P-core", job.name

    def test_render(self, study):
        text = render(study)
        assert "makespan" in text and "guided" in text

    def test_unknown_policy(self):
        jobs = default_job_batch("raptor-lake-i7-13700", per_profile=1)
        with pytest.raises(ValueError):
            run_placement("raptor-lake-i7-13700", jobs, "random")
