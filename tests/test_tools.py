"""CLI tool tests (artifact-script analogs)."""

import json

import pytest

from repro.tools import hwinfo, mon_hpl, papi_avail, perf_stat, process_runs


class TestMonHpl:
    def test_settled_temps_parser(self):
        assert mon_hpl.parse_settled_temps("thermal_zone9:35000") == (9, 35.0)
        with pytest.raises(Exception):
            mon_hpl.parse_settled_temps("zone9:35000")
        with pytest.raises(Exception):
            mon_hpl.parse_settled_temps("thermal_zone9")

    def test_paper_invocation_roundtrip(self, tmp_path, capsys):
        """The artifact's T1 -> T2 workflow with the paper's parameters
        (reduced N): mon_hpl writes raw data, process_runs aggregates."""
        out = tmp_path / "raw"
        rc = mon_hpl.main(
            [
                "--machine", "raptor-lake-i7-13700",
                "-n_runs", "2",
                "-cores", "0,2,4,6,8,10,12,14,16-23",
                "-settled_temps", "thermal_zone9:35000",
                "--variant", "intel",
                "--n", "9216", "--nb", "192",
                "--out", str(out),
            ]
        )
        assert rc == 0
        meta = json.loads((out / "summary.json").read_text())
        assert len(meta["runs"]) == 2
        assert all(r["gflops"] > 0 for r in meta["runs"])
        assert (out / "run_000.csv").exists()

        rc = process_runs.main([str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "aggregated 2 runs" in captured
        assert "median freq" in captured
        assert (out / "averaged.csv").exists()
        header = (out / "averaged.csv").read_text().splitlines()[0]
        assert "freq_P-core_mhz" in header

    def test_wrong_thermal_zone_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            mon_hpl.main(
                [
                    "-n_runs", "1",
                    "-settled_temps", "thermal_zone0:35000",
                    "--n", "1152",
                    "--out", str(tmp_path / "raw"),
                ]
            )

    def test_process_runs_needs_summary(self, tmp_path):
        with pytest.raises(SystemExit):
            process_runs.main([str(tmp_path)])


class TestHwinfo:
    def test_basic(self, capsys):
        assert hwinfo.main(["--machine", "raptor-lake-i7-13700"]) == 0
        out = capsys.readouterr().out
        assert "i7-13700" in out
        assert "class P-core" in out and "class E-core" in out

    def test_detect_survey(self, capsys):
        assert hwinfo.main(["--machine", "orangepi-800", "--detect"]) == 0
        out = capsys.readouterr().out
        assert "cpu_capacity" in out
        assert "consensus: 2 core type(s)" in out

    def test_acpi_firmware(self, capsys):
        assert hwinfo.main(["--machine", "orangepi-800", "--firmware", "acpi"]) == 0
        out = capsys.readouterr().out
        assert "apmu0" in out


class TestPapiAvail:
    def test_hybrid_lists_derived_presets(self, capsys):
        assert papi_avail.main(["--machine", "raptor-lake-i7-13700"]) == 0
        out = capsys.readouterr().out
        assert "PAPI_TOT_INS" in out
        assert "DERIVED_ADD" in out

    def test_legacy_marks_unavailable(self, capsys):
        assert papi_avail.main(
            ["--machine", "raptor-lake-i7-13700", "--mode", "legacy"]
        ) == 0
        out = capsys.readouterr().out
        assert "multiple default PMUs" in out

    def test_native_listing(self, capsys):
        assert papi_avail.main(["--native", "--pmu", "adl_glc"]) == 0
        out = capsys.readouterr().out
        assert "adl_glc::TOPDOWN:SLOTS" in out


class TestPerfStat:
    def test_loop_workload(self, capsys):
        rc = perf_stat.main(
            ["--workload", "loop", "--instructions", "1e7", "--jitter", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "INST_RETIRED: total 10000000" in out

    def test_pinned_to_ecores(self, capsys):
        rc = perf_stat.main(
            ["--workload", "loop", "--instructions", "1e6",
             "--cores", "16-23", "--jitter", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "adl_grt: 1000000 (100.0%)" in out

    def test_hpl_workload(self, capsys):
        rc = perf_stat.main(
            ["--workload", "hpl", "--n", "2304", "--nb", "192",
             "-e", "INST_RETIRED,LONGEST_LAT_CACHE:MISS"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "LONGEST_LAT_CACHE:MISS" in out
        assert "adl_glc" in out and "adl_grt" in out
