"""PAPI presets (incl. derived multi-PMU), components, multiplexing."""

import pytest

from repro.papi import Papi, PapiError
from repro.papi.consts import PRESETS, PapiErrorCode
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(
    PhaseRates(
        ipc=2.0,
        flops_per_instr=4.0,
        llc_refs_per_instr=0.01,
        llc_miss_rate=0.5,
        branches_per_instr=0.1,
        branch_miss_rate=0.05,
    )
)


def _thread(system, instructions=1e6, cpu=None):
    affinity = {cpu} if cpu is not None else None
    return system.machine.spawn(
        SimThread("app", Program([ComputePhase(instructions, RATES)]), affinity=affinity)
    )


class TestPresets:
    def test_tot_ins_is_derived_add_on_hybrid(self, raptor):
        """§V-2: PAPI_TOT_INS transparently sums both core types."""
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        entry = papi.eventset(es).entries[0]
        assert entry.derived == "DERIVED_ADD"
        assert len(entry.slot_indices) == 2

    def test_tot_ins_counts_across_migrations(self):
        system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=4,
                        migrate_jitter=0.1, rebalance_jitter=0.1)
        papi = Papi(system)
        t = _thread(system, instructions=2e7)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        system.machine.run_until_done([t], max_s=10)
        values = papi.stop(es)
        assert values[0] == pytest.approx(2e7, rel=1e-6)
        assert set(t.counters) == {"cpu_core", "cpu_atom"}

    def test_not_derived_on_homogeneous(self, xeon):
        papi = Papi(xeon)
        t = _thread(xeon)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        assert papi.eventset(es).entries[0].derived == "NOT_DERIVED"

    def test_unknown_preset(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "PAPI_BOGUS")
        assert e.value.code == PapiErrorCode.ENOTPRESET

    def test_all_presets_resolve_on_all_machines(self, any_system):
        papi = Papi(any_system)
        for preset in PRESETS:
            assert papi.query_event(preset), preset

    def test_preset_values_consistent(self, raptor):
        """PAPI_BR_MSP <= PAPI_BR_INS, PAPI_L3_TCM <= PAPI_L3_TCA."""
        papi = Papi(raptor)
        t = _thread(raptor, instructions=5e6)
        es = papi.create_eventset()
        papi.attach(es, t)
        for p in ("PAPI_BR_INS", "PAPI_BR_MSP", "PAPI_L3_TCA", "PAPI_L3_TCM"):
            papi.add_event(es, p)
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        br, msp, tca, tcm = papi.stop(es)
        assert 0 < msp < br
        assert 0 < tcm < tca

    def test_mixed_preset_and_native(self, raptor):
        papi = Papi(raptor)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _thread(raptor, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.add_event(es, "adl_glc::TOPDOWN:SLOTS")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        tot, slots = papi.stop(es)
        assert tot == pytest.approx(1e6)
        assert slots > 0

    def test_legacy_preset_fails_on_hybrid(self, raptor):
        papi = Papi(raptor, mode="legacy")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "PAPI_TOT_INS")
        assert e.value.code == PapiErrorCode.EMISC

    def test_query_event(self, raptor):
        papi = Papi(raptor)
        assert papi.query_event("PAPI_TOT_INS")
        assert papi.query_event("adl_glc::TOPDOWN:SLOTS")
        assert not papi.query_event("adl_grt::TOPDOWN:SLOTS")
        assert not papi.query_event("PAPI_NOPE")
        assert not papi.query_event("GARBAGE::")


class TestUncoreAndRaplComponents:
    def test_legacy_uncore_must_use_uncore_component(self, raptor):
        papi = Papi(raptor, mode="legacy")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "uncore_llc::LLC_MISSES")
        assert papi.eventset(es).component is papi.perf_event_uncore

    def test_legacy_cannot_mix_cpu_and_uncore(self, raptor):
        """§IV-E: 'nor can you have things like CPU and RAPL power events
        in the same EventSet' (legacy)."""
        papi = Papi(raptor, mode="legacy")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        with pytest.raises(PapiError) as e:
            papi.add_event(es, "uncore_llc::LLC_MISSES")
        assert e.value.code == PapiErrorCode.ECNFLCT
        with pytest.raises(PapiError):
            papi.add_event(es, "rapl::RAPL_ENERGY_PKG")

    def test_hybrid_combined_eventset_with_uncore_and_rapl(self, raptor):
        """§V-3 implemented: uncore and RAPL in a combined EventSet."""
        papi = Papi(raptor, mode="hybrid")
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = _thread(raptor, instructions=5e6, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
        papi.add_event(es, "uncore_llc::LLC_MISSES")
        papi.add_event(es, "rapl::RAPL_ENERGY_PKG")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        ins_p, ins_e, llc, energy = papi.stop(es)
        assert ins_p == pytest.approx(5e6, rel=0.01)
        assert ins_e == 0
        assert llc > 0
        assert energy > 0  # 2^-32 J units

    def test_rapl_component_reports_nanojoules(self, raptor):
        papi = Papi(raptor, mode="legacy")
        es = papi.create_eventset()
        papi.add_event(es, "rapl::RAPL_ENERGY_PKG")
        papi.start(es)
        t = _thread(raptor, instructions=5e6)
        raptor.machine.run_until_done([t], max_s=5)
        (nj,) = papi.stop(es)
        assert nj == pytest.approx(raptor.machine.rapl.package.energy_j * 1e9, rel=0.05)

    def test_rapl_absent_on_arm(self, orangepi):
        papi = Papi(orangepi, mode="legacy")
        es = papi.create_eventset()
        with pytest.raises(PapiError):
            papi.add_event(es, "rapl::RAPL_ENERGY_PKG")

    def test_uncore_component_counts(self, raptor):
        papi = Papi(raptor, mode="legacy")
        es = papi.create_eventset()
        papi.add_event(es, "uncore_llc::LLC_LOOKUPS")
        papi.start(es)
        t = _thread(raptor, instructions=2e6)
        raptor.machine.run_until_done([t], max_s=5)
        (refs,) = papi.stop(es)
        assert refs == pytest.approx(2e6 * 0.01, rel=0.02)


class TestMultiplexedEventSets:
    def test_multiplexing_survives_hybrid_mode(self, raptor):
        """§IV-E's worry: the multi-group redesign must not break PAPI
        multiplexing (each event its own leader, scaled estimates)."""
        papi = Papi(raptor, mode="hybrid")
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        # Long enough to cover many 4 ms multiplex rotation periods.
        t = _thread(raptor, instructions=5e8, cpu=p_cpu)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.set_multiplex(es)
        glc = raptor.perf.registry.by_name["cpu_core"]
        n = glc.n_counters + glc.n_fixed + 3
        for _ in range(n):
            papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=10)
        values = papi.stop(es)
        assert len(values) == n
        for v in values:
            assert v == pytest.approx(5e8, rel=0.3)

    def test_set_multiplex_before_adds_only(self, raptor):
        papi = Papi(raptor)
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
        with pytest.raises(PapiError):
            papi.set_multiplex(es)


class TestBackwardsCompatRouting:
    """§V-3: hardcoded uncore-component workflows keep working in hybrid
    mode via the explicit component override."""

    def test_hardcoded_uncore_component_still_works_in_hybrid(self, raptor):
        papi = Papi(raptor, mode="hybrid")
        es = papi.create_eventset()
        papi.add_event(es, "uncore_llc::LLC_MISSES", component="perf_event_uncore")
        assert papi.eventset(es).component is papi.perf_event_uncore
        papi.start(es)
        t = _thread(raptor, instructions=2e6)
        raptor.machine.run_until_done([t], max_s=5)
        (misses,) = papi.stop(es)
        assert misses > 0

    def test_override_validates_support(self, raptor):
        papi = Papi(raptor, mode="hybrid")
        t = _thread(raptor)
        es = papi.create_eventset()
        papi.attach(es, t)
        with pytest.raises(PapiError):
            papi.add_event(
                es, "adl_glc::INST_RETIRED:ANY", component="perf_event_uncore"
            )
        with pytest.raises(PapiError):
            papi.add_event(es, "uncore_llc::LLC_MISSES", component="bogus")
        with pytest.raises(PapiError):
            papi.add_event(es, "PAPI_TOT_INS", component="perf_event")
