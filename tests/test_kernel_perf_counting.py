"""Counting semantics: the hybrid rule, times, groups, mux, software,
uncore and RAPL events, rdpmc."""

import pytest

from repro.kernel.perf import PerfEventAttr, RdpmcReader
from repro.kernel.perf.attr import PerfType, ReadFormat, SwConfig
from repro.kernel.perf.pmu import RAPL_CONFIG_PKG, RAPL_PERF_UNIT_J
from repro.kernel.perf.subsystem import PerfIoctl
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5))


def _open(system, pmu_name, config, tid, **kw):
    ptype = system.perf.registry.by_name[pmu_name].type
    return system.perf.perf_event_open(
        PerfEventAttr(type=ptype, config=config, **kw), pid=tid, cpu=-1
    )


def _enable(system, fd):
    system.perf.ioctl(fd, PerfIoctl.ENABLE)


class TestHybridCounting:
    def test_event_counts_only_on_matching_core_type(self, raptor):
        """The central mechanism: each PMU's event sees only its cores."""
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={e_cpu})
        )
        fd_p = _open(raptor, "cpu_core", 0x00C0, t.tid)
        fd_e = _open(raptor, "cpu_atom", 0x00C0, t.tid)
        _enable(raptor, fd_p)
        _enable(raptor, fd_e)
        raptor.machine.run_until_done([t], max_s=5)
        assert raptor.perf.read(fd_p).value == 0
        assert raptor.perf.read(fd_e).value == pytest.approx(1e6)

    def test_split_counts_sum_to_total(self):
        """With migrations, per-PMU counts partition the total exactly."""
        system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=2,
                        migrate_jitter=0.1, rebalance_jitter=0.1)
        t = system.machine.spawn(SimThread("app", Program([ComputePhase(2e7, RATES)])))
        fd_p = _open(system, "cpu_core", 0x00C0, t.tid)
        fd_e = _open(system, "cpu_atom", 0x00C0, t.tid)
        _enable(system, fd_p)
        _enable(system, fd_e)
        system.machine.run_until_done([t], max_s=10)
        p, e = system.perf.read(fd_p).value, system.perf.read(fd_e).value
        assert p > 0 and e > 0
        assert p + e == pytest.approx(2e7, rel=1e-6)

    def test_enabled_vs_running_times(self, raptor):
        """On a foreign core the event is enabled but never running."""
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        fd_e = _open(raptor, "cpu_atom", 0x00C0, t.tid)
        _enable(raptor, fd_e)
        raptor.machine.run_until_done([t], max_s=5)
        rv = raptor.perf.read(fd_e)
        assert rv.time_enabled_ns > 0
        assert rv.time_running_ns == 0
        assert rv.value == 0

    def test_disabled_event_counts_nothing(self, raptor):
        t = raptor.machine.spawn(SimThread("app", Program([ComputePhase(1e6, RATES)])))
        fd = _open(raptor, "cpu_core", 0x00C0, t.tid)  # disabled by default
        raptor.machine.run_until_done([t], max_s=5)
        rv = raptor.perf.read(fd)
        assert rv.value == 0
        assert rv.time_enabled_ns == 0

    def test_ioctl_disable_enable(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread(
                "app",
                Program(
                    [
                        ComputePhase(1e6, RATES),
                        ControlOp(lambda th: raptor.perf.ioctl(fd_holder[0], PerfIoctl.DISABLE)),
                        ComputePhase(1e6, RATES),
                    ]
                ),
                affinity={p_cpu},
            )
        )
        fd = _open(raptor, "cpu_core", 0x00C0, t.tid)
        fd_holder = [fd]
        _enable(raptor, fd)
        raptor.machine.run_until_done([t], max_s=5)
        # Only the first megainstruction is counted (plus syscall overhead).
        assert raptor.perf.read(fd).value == pytest.approx(1e6, rel=0.05)

    def test_reset_zeroes_count_not_times(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        fd = _open(raptor, "cpu_core", 0x00C0, t.tid)
        _enable(raptor, fd)
        raptor.machine.run_until_done([t], max_s=5)
        before = raptor.perf.read(fd)
        raptor.perf.ioctl(fd, PerfIoctl.RESET)
        after = raptor.perf.read(fd)
        assert before.value > 0
        assert after.value == 0
        assert after.time_enabled_ns == before.time_enabled_ns


class TestGroupRead:
    def test_group_read_returns_members_in_order(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        ptype = raptor.perf.registry.by_name["cpu_core"].type
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(
                type=ptype,
                config=0x00C0,
                read_format=ReadFormat.GROUP
                | ReadFormat.TOTAL_TIME_ENABLED
                | ReadFormat.TOTAL_TIME_RUNNING,
            ),
            pid=t.tid,
            cpu=-1,
        )
        raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x003C),
            pid=t.tid, cpu=-1, group_fd=leader,
        )
        raptor.perf.ioctl(leader, PerfIoctl.ENABLE, flag_group=True)
        raptor.machine.run_until_done([t], max_s=5)
        values = raptor.perf.read(leader)
        assert isinstance(values, list) and len(values) == 2
        assert values[0].value == pytest.approx(1e6)        # instructions
        assert values[1].value == pytest.approx(5e5)        # cycles at IPC 2

    def test_group_enable_disables_together(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        ptype = raptor.perf.registry.by_name["cpu_core"].type
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        sib = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x003C), pid=t.tid, cpu=-1, group_fd=leader
        )
        raptor.perf.ioctl(leader, PerfIoctl.ENABLE, flag_group=True)
        raptor.machine.run_until_done([t], max_s=5)
        assert raptor.perf.read(sib).value > 0


class TestMultiplexing:
    def test_more_groups_than_counters_rotate(self, raptor):
        """With many standalone events, running < enabled and the scaled
        estimate approaches the true count."""
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(5e7, RATES)]), affinity={p_cpu})
        )
        glc = raptor.perf.registry.by_name["cpu_core"]
        n_events = glc.n_counters + glc.n_fixed + 4
        fds = []
        # Many INSTRUCTIONS events, each its own group leader.
        for _ in range(n_events):
            fd = _open(raptor, "cpu_core", 0x00C0, t.tid)
            _enable(raptor, fd)
            fds.append(fd)
        raptor.machine.run_until_done([t], max_s=10)
        readings = [raptor.perf.read(fd) for fd in fds]
        assert any(rv.time_running_ns < rv.time_enabled_ns for rv in readings)
        for rv in readings:
            assert rv.value <= 5e7 * 1.01
            if rv.time_running_ns > 0:
                assert rv.scaled_value() == pytest.approx(5e7, rel=0.25)

    def test_no_mux_when_groups_fit(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        fds = [_open(raptor, "cpu_core", c, t.tid) for c in (0x00C0, 0x003C)]
        for fd in fds:
            _enable(raptor, fd)
        raptor.machine.run_until_done([t], max_s=5)
        for fd in fds:
            rv = raptor.perf.read(fd)
            assert rv.time_running_ns == rv.time_enabled_ns

    def test_pinned_events_always_scheduled(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(5e7, RATES)]), affinity={p_cpu})
        )
        glc = raptor.perf.registry.by_name["cpu_core"]
        pinned_fd = _open(raptor, "cpu_core", 0x00C0, t.tid, pinned=True)
        _enable(raptor, pinned_fd)
        for _ in range(glc.n_counters + glc.n_fixed + 4):
            fd = _open(raptor, "cpu_core", 0x003C, t.tid)
            _enable(raptor, fd)
        raptor.machine.run_until_done([t], max_s=10)
        rv = raptor.perf.read(pinned_fd)
        assert rv.time_running_ns == rv.time_enabled_ns
        assert rv.value == pytest.approx(5e7, rel=1e-6)


class TestSoftwareEvents:
    def test_context_switches_and_migrations(self):
        system = System("raptor-lake-i7-13700", dt_s=1e-4, seed=3,
                        migrate_jitter=0.1, rebalance_jitter=0.1)
        t = system.machine.spawn(SimThread("app", Program([ComputePhase(2e7, RATES)])))
        fd_cs = system.perf.perf_event_open(
            PerfEventAttr(type=PerfType.SOFTWARE, config=SwConfig.CONTEXT_SWITCHES),
            pid=t.tid, cpu=-1,
        )
        fd_mig = system.perf.perf_event_open(
            PerfEventAttr(type=PerfType.SOFTWARE, config=SwConfig.CPU_MIGRATIONS),
            pid=t.tid, cpu=-1,
        )
        system.perf.ioctl(fd_cs, PerfIoctl.ENABLE)
        system.perf.ioctl(fd_mig, PerfIoctl.ENABLE)
        system.machine.run_until_done([t], max_s=10)
        assert system.perf.read(fd_mig).value == t.nr_migrations > 0
        assert system.perf.read(fd_cs).value > 0


class TestUncoreAndRapl:
    def test_uncore_counts_all_cores(self, raptor):
        """Uncore LLC events see traffic from both core types."""
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        tp = raptor.machine.spawn(
            SimThread("p", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu}))
        te = raptor.machine.spawn(
            SimThread("e", Program([ComputePhase(1e6, RATES)]), affinity={e_cpu}))
        utype = raptor.perf.registry.by_name["uncore_llc"].type
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=utype, config=0x01), pid=-1, cpu=0
        )
        raptor.perf.ioctl(fd, PerfIoctl.ENABLE)
        raptor.machine.run_until_done([tp, te], max_s=5)
        # 2e6 instructions x 0.01 refs/instr from both threads together.
        assert raptor.perf.read(fd).value == pytest.approx(2e4, rel=0.01)

    def test_rapl_event_reports_energy(self, raptor):
        ptype = raptor.perf.registry.by_name["power"].type
        fd = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=RAPL_CONFIG_PKG), pid=-1, cpu=0
        )
        raptor.perf.ioctl(fd, PerfIoctl.ENABLE)
        t = raptor.machine.spawn(SimThread("w", Program([ComputePhase(5e6, RATES)])))
        raptor.machine.run_until_done([t], max_s=5)
        joules = raptor.perf.read(fd).value * RAPL_PERF_UNIT_J
        assert joules > 0
        # Sanity: matches the ground-truth domain.
        assert joules == pytest.approx(raptor.machine.rapl.package.energy_j, rel=0.05)


class TestRdpmc:
    def test_rdpmc_matching_and_foreign(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        results = {}

        def read_here(key):
            def fn(thread):
                results[key] = RdpmcReader(raptor.perf, fd_holder[0]).read(thread)
            return fn

        t = raptor.machine.spawn(
            SimThread(
                "app",
                Program(
                    [
                        ComputePhase(1e6, RATES),
                        ControlOp(read_here("on_p")),
                        ControlOp(lambda th: setattr(th, "affinity", {e_cpu})),
                        ComputePhase(1e6, RATES),
                        ControlOp(read_here("on_e")),
                    ]
                ),
                affinity={p_cpu},
            )
        )
        fd = _open(raptor, "cpu_core", 0x00C0, t.tid, disabled=False)
        fd_holder = [fd]
        raptor.machine.run_until_done([t], max_s=5)
        assert results["on_p"].valid
        assert results["on_p"].value > 0
        assert not results["on_e"].valid

    def test_rdpmc_wrong_thread(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu}))
        other = raptor.machine.spawn(
            SimThread("other", Program([ComputePhase(1e5, RATES)]), affinity={p_cpu}))
        fd = _open(raptor, "cpu_core", 0x00C0, t.tid, disabled=False)
        raptor.machine.run_until_done([t, other], max_s=5)
        r = RdpmcReader(raptor.perf, fd).read(other)
        assert not r.valid
