"""Integration tests: every experiment reproduces its paper shape.

These run the actual experiment pipelines at reduced problem sizes (the
same code paths the benchmarks use at full scale) and assert the
qualitative claims recorded in DESIGN.md.
"""

import pytest

from repro.experiments import (
    fig1_frequencies,
    fig2_power,
    fig3_arm_throttle,
    fig4_arm_scaling,
    hybrid_eventset,
    overhead,
    table1_hw,
    table2_hpl,
    table3_counters,
)
from repro.experiments.common import orangepi_system, raptor_system
from repro.hpl import HplConfig

# Reduced sizes: large enough that runs pass well beyond the 28 s RAPL
# PL1 window (the steady state every power claim depends on), small
# enough that the whole module stays fast.
SMALL_RAPTOR = HplConfig(n=29952, nb=192)
SMALL_OPI = HplConfig(n=9984, nb=128)


class TestTable1:
    def test_render_contains_table1_facts(self):
        result = table1_hw.run_hw_config(raptor_system())
        text = table1_hw.render(result)
        assert "i7-13700" in text
        assert "8 (16 threads)" in text
        assert "32GB DDR5" in text

    def test_orangepi_table4(self):
        result = table1_hw.run_hw_config(orangepi_system())
        text = table1_hw.render(result)
        assert "RK3399" in text
        assert "4GB LPDDR4" in text


@pytest.fixture(scope="module")
def table2():
    return table2_hpl.run_table2(config=SMALL_RAPTOR)


class TestTable2:
    def test_shape(self, table2):
        holds = table2_hpl.shape_holds(table2)
        assert all(holds.values()), holds

    def test_all_core_change_dominates(self, table2):
        assert table2.change_pct("P and E") > 25.0

    def test_render(self, table2):
        text = table2_hpl.render(table2)
        assert "Enabled cores" in text and "P and E" in text


class TestTable3:
    def test_shape(self):
        result = table3_counters.run_table3(config=SMALL_RAPTOR)
        holds = table3_counters.shape_holds(result)
        assert all(holds.values()), holds
        # Quantitative vicinity of the paper's cells.
        assert result.miss_rate["openblas"]["P"] == pytest.approx(0.86, abs=0.05)
        assert result.miss_rate["intel"]["P"] == pytest.approx(0.64, abs=0.05)
        assert result.instr_share["openblas"]["P"] == pytest.approx(0.80, abs=0.10)
        assert result.instr_share["intel"]["P"] == pytest.approx(0.68, abs=0.10)
        assert "LLC missrate" in table3_counters.render(result)


class TestFig1:
    def test_shape(self):
        result = fig1_frequencies.run_fig1(config=SMALL_RAPTOR)
        holds = fig1_frequencies.shape_holds(result)
        assert all(holds.values()), holds
        assert "median P GHz" in fig1_frequencies.render(result)


class TestFig2:
    def test_shape(self):
        result = fig2_power.run_fig2(config=SMALL_RAPTOR)
        holds = fig2_power.shape_holds(result)
        assert all(holds.values()), holds
        assert result.pl1_w == 65.0 and result.pl2_w == 219.0
        assert "peak W" in fig2_power.render(result)


class TestFig3:
    def test_shape(self):
        result = fig3_arm_throttle.run_fig3(config=SMALL_OPI)
        holds = fig3_arm_throttle.shape_holds(result)
        assert all(holds.values()), holds
        assert "big sustained MHz" in fig3_arm_throttle.render(result)


class TestFig4:
    def test_shape(self):
        result = fig4_arm_scaling.run_fig4(config=SMALL_OPI)
        holds = fig4_arm_scaling.shape_holds(result)
        assert all(holds.values()), holds
        assert "Gflop/s" in fig4_arm_scaling.render(result)


class TestHybridEventset:
    def test_unpinned_splits_and_sums(self):
        r = hybrid_eventset.run_hybrid_test(mode="hybrid", reps=60)
        p, e = r.average(0), r.average(1)
        assert p > 0 and e > 0
        # Sum is ~1M plus small PAPI overhead per repetition.
        assert 1e6 <= r.avg_total <= 1.05e6
        # The thread lives mostly on the P-cores.
        assert p > e

    def test_pinned_p_counts_everything(self):
        r = hybrid_eventset.run_hybrid_test(mode="hybrid", pin="P-core", reps=20)
        assert r.average(0) == pytest.approx(r.avg_total)
        assert r.average(1) == 0

    def test_pinned_e_counts_on_e_only(self):
        r = hybrid_eventset.run_hybrid_test(mode="hybrid", pin="E-core", reps=20)
        assert r.average(0) == 0
        assert r.average(1) == pytest.approx(r.avg_total)

    def test_legacy_pinned_foreign_gives_zero(self):
        """'you might get 0, 1 million, or something in between'."""
        r = hybrid_eventset.run_hybrid_test(mode="legacy", pin="E-core", reps=20)
        assert r.avg_total == 0

    def test_legacy_unpinned_in_between(self):
        r = hybrid_eventset.run_hybrid_test(mode="legacy", reps=60)
        assert 0 < r.avg_total < 1e6

    def test_homogeneous_machine_expected_result(self):
        r = hybrid_eventset.run_hybrid_test(
            mode="legacy", machine="xeon-homogeneous", reps=20
        )
        assert 1e6 <= r.avg_total <= 1.05e6

    def test_arm_biglittle_also_works(self):
        r = hybrid_eventset.run_hybrid_test(
            mode="hybrid", machine="orangepi-800", reps=20, pin="big"
        )
        assert r.average(0) == pytest.approx(r.avg_total)

    def test_render(self):
        rs = [hybrid_eventset.run_hybrid_test(mode="hybrid", pin="P-core", reps=5)]
        assert "Average instructions" in hybrid_eventset.render(rs)


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return overhead.run_overhead()

    def test_shape(self, result):
        holds = overhead.shape_holds(result)
        assert all(holds.values()), holds

    def test_syscalls_scale_with_groups(self, result):
        for label, ops in result.costs.items():
            groups = result.groups[label]
            assert ops["read"].syscalls == groups
            assert ops["start"].syscalls == 2 * groups  # reset + enable

    def test_render(self, result):
        text = overhead.render(result)
        assert "rdpmc" in text and "groups" in text
