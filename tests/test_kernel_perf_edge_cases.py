"""Kernel perf edge cases: dead threads, closed leaders, timing APIs."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf import PerfEventAttr
from repro.kernel.perf.subsystem import PerfIoctl
from repro.papi import Papi, PapiError
from repro.papi.consts import PapiErrorCode
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


def _open_enabled(system, pmu, tid, config=0x00C0):
    ptype = system.perf.registry.by_name[pmu].type
    fd = system.perf.perf_event_open(
        PerfEventAttr(type=ptype, config=config), pid=tid, cpu=-1
    )
    system.perf.ioctl(fd, PerfIoctl.ENABLE)
    return fd


class TestDeadThreads:
    def test_counts_freeze_after_thread_exit(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        fd = _open_enabled(raptor, "cpu_core", t.tid)
        raptor.machine.run_until_done([t], max_s=5)
        first = raptor.perf.read(fd)
        raptor.machine.run_for(0.01)  # machine keeps ticking, thread is gone
        second = raptor.perf.read(fd)
        assert second.value == first.value
        assert second.time_enabled_ns == first.time_enabled_ns

    def test_open_on_finished_thread_allowed(self, raptor):
        """The thread still exists in the table; the event just never runs."""
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e5, RATES)]))
        )
        raptor.machine.run_until_done([t], max_s=5)
        fd = _open_enabled(raptor, "cpu_core", t.tid)
        raptor.machine.run_for(0.005)
        assert raptor.perf.read(fd).value == 0


class TestGroupTeardown:
    def test_closing_sibling_keeps_leader_counting(self, raptor):
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread(
                "app",
                Program([ComputePhase(1e6, RATES), ComputePhase(1e6, RATES)]),
                affinity={p_cpu},
            )
        )
        ptype = raptor.perf.registry.by_name["cpu_core"].type
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        sib = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x003C), pid=t.tid, cpu=-1,
            group_fd=leader,
        )
        raptor.perf.ioctl(leader, PerfIoctl.ENABLE, flag_group=True)
        raptor.machine.run_until(lambda: t.counters_total()[1] >= 1e6, max_s=5)
        raptor.perf.close(sib)
        raptor.machine.run_until_done([t], max_s=5)
        assert raptor.perf.read(leader).value == pytest.approx(2e6)

    def test_closed_sibling_leaves_group(self, raptor):
        """Closing a sibling must detach it: GROUP reads stop listing it
        and its counter slot frees up for a new sibling."""
        from repro.kernel.perf import ReadFormat

        glc = raptor.perf.registry.by_name["cpu_core"]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]))
        )
        budget = glc.n_counters + glc.n_fixed
        raptor.perf.reserve_counters("cpu_core", budget - 2)

        leader = raptor.perf.perf_event_open(
            PerfEventAttr(
                type=glc.type, config=0x00C0, read_format=ReadFormat.GROUP
            ),
            pid=t.tid, cpu=-1,
        )
        sib = raptor.perf.perf_event_open(
            PerfEventAttr(type=glc.type, config=0x003C),
            pid=t.tid, cpu=-1, group_fd=leader,
        )
        # The group is full: a third event does not fit...
        with pytest.raises(KernelError) as e:
            raptor.perf.perf_event_open(
                PerfEventAttr(type=glc.type, config=0x00C4),
                pid=t.tid, cpu=-1, group_fd=leader,
            )
        assert e.value.kernel_errno == Errno.EINVAL
        # ...until the sibling is closed, which must release its slot.
        raptor.perf.close(sib)
        assert len(raptor.perf.read(leader)) == 1
        sib2 = raptor.perf.perf_event_open(
            PerfEventAttr(type=glc.type, config=0x00C4),
            pid=t.tid, cpu=-1, group_fd=leader,
        )
        assert len(raptor.perf.read(leader)) == 2
        raptor.perf.close(sib2)

    def test_closing_leader_promotes_siblings(self, raptor):
        """Linux's perf_group_detach: when a leader goes away, siblings
        keep counting as singleton events."""
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread(
                "app",
                Program([ComputePhase(1e6, RATES), ComputePhase(1e6, RATES)]),
                affinity={p_cpu},
            )
        )
        ptype = raptor.perf.registry.by_name["cpu_core"].type
        leader = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        sib = raptor.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x003C), pid=t.tid, cpu=-1,
            group_fd=leader,
        )
        raptor.perf.ioctl(leader, PerfIoctl.ENABLE, flag_group=True)
        raptor.machine.run_until(lambda: t.counters_total()[1] >= 1e6, max_s=5)
        mid = raptor.perf.read(sib)
        raptor.perf.close(leader)
        raptor.machine.run_until_done([t], max_s=5)
        final = raptor.perf.read(sib)
        assert final.value > mid.value
        assert final.time_enabled_ns > mid.time_enabled_ns

    def test_ioctl_on_closed_fd(self, raptor):
        t = raptor.machine.spawn(SimThread("app", Program([ComputePhase(1e5, RATES)])))
        fd = _open_enabled(raptor, "cpu_core", t.tid)
        raptor.perf.close(fd)
        with pytest.raises(KernelError) as e:
            raptor.perf.ioctl(fd, PerfIoctl.RESET)
        assert e.value.kernel_errno == Errno.EBADF


class TestPapiUtilities:
    def test_real_and_virt_time(self, raptor):
        papi = Papi(raptor)
        cpu = raptor.topology.cpus_of_type("P-core")[0]
        t1 = raptor.machine.spawn(
            SimThread("a", Program([ComputePhase(1e6, RATES)]), affinity={cpu})
        )
        t2 = raptor.machine.spawn(
            SimThread("b", Program([ComputePhase(1e6, RATES)]), affinity={cpu})
        )
        raptor.machine.run_until_done([t1, t2], max_s=5)
        real = papi.get_real_usec()
        virt1 = papi.get_virt_usec(t1)
        # Two threads shared one CPU: each ran about half the wall time.
        assert 0 < virt1 < real
        assert papi.get_real_cyc() == pytest.approx(
            real * raptor.machine.tsc_ghz * 1e3, rel=0.01
        )

    def test_component_info(self, raptor):
        papi = Papi(raptor)
        info = papi.get_component_info(0)
        assert info["name"] == "perf_event"
        assert info["mode"] == "hybrid"
        assert info["num_native_events"] > 20
        uncore = papi.get_component_info(1)
        assert uncore["name"] == "perf_event_uncore"
        assert uncore["num_native_events"] == 2
        with pytest.raises(PapiError) as e:
            papi.get_component_info(99)
        assert e.value.code == PapiErrorCode.ENOCMP
