"""Unit tests for DVFS, power, thermal, RAPL and cache models."""

import pytest

from repro.hw.cache import LlcModel, memory_stall_cycles
from repro.hw.dvfs import DvfsGovernor
from repro.hw.machines import orangepi_800, raptor_lake_i7_13700, _raptor_cove
from repro.hw.power import CorePowerState, PowerModel
from repro.hw.rapl import ENERGY_UNIT_J, RaplDomain, RaplPackage
from repro.hw.thermal import ThermalModel


# ---------------------------------------------------------------- DVFS

class TestDvfs:
    def test_starts_at_min(self):
        gov = DvfsGovernor(raptor_lake_i7_13700().topology)
        for i, cl in enumerate(gov.topology.clusters):
            assert gov.freq_mhz[i] == cl.ctype.min_freq_mhz

    def test_full_util_reaches_max(self):
        spec = raptor_lake_i7_13700()
        gov = DvfsGovernor(spec.topology)
        gov.update([1.0, 1.0])
        assert gov.freq_mhz[0] == spec.topology.clusters[0].ctype.max_freq_mhz
        assert gov.freq_mhz[1] == spec.topology.clusters[1].ctype.max_freq_mhz

    def test_partial_util_scales(self):
        spec = raptor_lake_i7_13700()
        gov = DvfsGovernor(spec.topology)
        gov.update([0.4, 0.0])
        ct = spec.topology.clusters[0].ctype
        assert ct.min_freq_mhz <= gov.freq_mhz[0] < ct.max_freq_mhz
        assert gov.freq_mhz[1] == spec.topology.clusters[1].ctype.min_freq_mhz

    def test_ceilings_clamp(self):
        spec = raptor_lake_i7_13700()
        gov = DvfsGovernor(spec.topology)
        gov.set_ceiling(0, "rapl", 3000)
        gov.update([1.0, 1.0])
        assert gov.freq_mhz[0] == 3000

    def test_min_of_multiple_ceilings(self):
        spec = raptor_lake_i7_13700()
        gov = DvfsGovernor(spec.topology)
        gov.set_ceiling(0, "rapl", 3000)
        gov.set_ceiling(0, "thermal", 2500)
        assert gov.ceiling_mhz(0) == 2500
        gov.clear_ceiling(0, "thermal")
        assert gov.ceiling_mhz(0) == 3000

    def test_ceiling_clamped_to_core_range(self):
        spec = raptor_lake_i7_13700()
        gov = DvfsGovernor(spec.topology)
        ct = spec.topology.clusters[0].ctype
        gov.set_ceiling(0, "rapl", 100)  # below min
        assert gov.ceiling_mhz(0) == ct.min_freq_mhz

    def test_freq_of_cpu(self):
        spec = raptor_lake_i7_13700()
        gov = DvfsGovernor(spec.topology)
        gov.update([1.0, 0.0])
        e_cpu = spec.topology.cpus_of_type("E-core")[0]
        assert gov.freq_of_cpu_mhz(0) == 5100
        assert gov.freq_of_cpu_ghz(e_cpu) == pytest.approx(0.8)

    def test_wrong_util_length_rejected(self):
        gov = DvfsGovernor(raptor_lake_i7_13700().topology)
        with pytest.raises(ValueError):
            gov.update([1.0])


# ---------------------------------------------------------------- power

class TestPower:
    def test_idle_power_is_base(self):
        spec = raptor_lake_i7_13700()
        model = PowerModel(spec)
        states = [CorePowerState() for _ in spec.topology.cores]
        freqs = [cl.ctype.min_freq_mhz for cl in spec.topology.clusters]
        s = model.sample(states, freqs)
        # Idle: leakage + uncore only; far below the PL1 limit.
        assert s.package_w < 15.0
        assert s.dram_w == 0.0

    def test_max_power_in_pl2_ballpark(self):
        """Full blast should approach (not wildly exceed) the 219 W PL2."""
        model = PowerModel(raptor_lake_i7_13700())
        assert 150.0 < model.max_package_w() < 260.0

    def test_spin_draws_less_than_busy(self):
        spec = raptor_lake_i7_13700()
        model = PowerModel(spec)
        freqs = [cl.ctype.max_freq_mhz for cl in spec.topology.clusters]
        busy = [CorePowerState(busy_frac=1.0) for _ in spec.topology.cores]
        spin = [CorePowerState(spin_frac=1.0) for _ in spec.topology.cores]
        assert model.sample(spin, freqs).package_w < model.sample(busy, freqs).package_w

    def test_state_length_validated(self):
        model = PowerModel(raptor_lake_i7_13700())
        with pytest.raises(ValueError):
            model.sample([CorePowerState()], [5100, 4100])


# ---------------------------------------------------------------- thermal

class TestThermal:
    def test_heats_toward_steady_state(self):
        spec = orangepi_800()
        tm = ThermalModel(spec)
        for _ in range(10000):
            tm.step(3.0, 0.01)
        expected = spec.ambient_c + 3.0 * spec.thermal_r_c_per_w
        assert tm.temp_c == pytest.approx(expected, rel=0.02)

    def test_cools_to_ambient(self):
        spec = orangepi_800()
        tm = ThermalModel(spec)
        tm.temp_c = 80.0
        for _ in range(20000):
            tm.step(0.0, 0.01)
        assert tm.temp_c == pytest.approx(spec.ambient_c, abs=0.5)

    def test_never_below_ambient(self):
        spec = orangepi_800()
        tm = ThermalModel(spec)
        tm.step(0.0, 100.0)
        assert tm.temp_c >= spec.ambient_c

    def test_is_settled(self):
        spec = raptor_lake_i7_13700()
        tm = ThermalModel(spec)
        tm.temp_c = 40.0
        assert not tm.is_settled(35.0)
        tm.temp_c = 34.0
        assert tm.is_settled(35.0)

    def test_sustainable_power(self):
        spec = orangepi_800()
        tm = ThermalModel(spec)
        expected = (spec.thermal_trip_c - spec.ambient_c) / spec.thermal_r_c_per_w
        assert tm.sustainable_power_w == pytest.approx(expected)

    def test_zone_millidegrees(self):
        tm = ThermalModel(raptor_lake_i7_13700())
        tm.step(50.0, 1.0)
        assert tm.zone.temp_millic == round(tm.temp_c * 1000)


# ---------------------------------------------------------------- RAPL

class TestRapl:
    def test_energy_accumulates(self):
        d = RaplDomain("package-0")
        d.accumulate(10.0, 1.0)
        d.accumulate(5.0, 2.0)
        assert d.energy_j == pytest.approx(20.0)
        assert d.read_uj() == pytest.approx(20e6, rel=1e-6)

    def test_raw_counter_units_and_wrap(self):
        d = RaplDomain("package-0")
        d.accumulate(1.0, 1.0)
        assert d.read_raw() == pytest.approx(1.0 / ENERGY_UNIT_J, rel=1e-6)
        # Push past the 32-bit wrap (2^32 * 2^-16 J = 65536 J).
        d.accumulate(70000.0, 1.0)
        assert 0 <= d.read_raw() < 2**32
        assert d.energy_j == pytest.approx(70001.0)

    def test_no_capping_without_rapl(self):
        spec = orangepi_800()
        rapl = RaplPackage(spec)
        assert not rapl.enabled
        gov = DvfsGovernor(spec.topology)
        rapl.step(gov, 100.0, 90.0, 5.0, 0.01)  # absurd power: no effect
        assert gov.ceiling_mhz(0) == spec.topology.clusters[0].ctype.max_freq_mhz
        # Energy still accounted.
        assert rapl.package.energy_j > 0

    def test_capping_engages_over_pl1(self):
        spec = raptor_lake_i7_13700()
        rapl = RaplPackage(spec)
        gov = DvfsGovernor(spec.topology)
        for _ in range(30000):
            rapl.step(gov, 200.0, 180.0, 10.0, 0.01)
        assert rapl.scale < 0.9
        assert gov.ceiling_mhz(0) < spec.topology.clusters[0].ctype.max_freq_mhz
        assert rapl.throttle_events > 0

    def test_burst_allowed_while_window_fills(self):
        """The Figure 2 spike: no clamping in the first instants."""
        spec = raptor_lake_i7_13700()
        rapl = RaplPackage(spec)
        gov = DvfsGovernor(spec.topology)
        for _ in range(20):  # 0.2 s at 200 W
            rapl.step(gov, 200.0, 180.0, 10.0, 0.01)
        assert rapl.scale == pytest.approx(1.0, abs=0.05)

    def test_scale_recovers_when_idle(self):
        spec = raptor_lake_i7_13700()
        rapl = RaplPackage(spec)
        gov = DvfsGovernor(spec.topology)
        for _ in range(30000):
            rapl.step(gov, 200.0, 180.0, 10.0, 0.01)
        squeezed = rapl.scale
        for _ in range(30000):
            rapl.step(gov, 5.0, 2.0, 1.0, 0.01)
        assert rapl.scale > squeezed
        assert rapl.scale == pytest.approx(1.0, abs=0.01)


# ---------------------------------------------------------------- cache

class TestCache:
    def test_fits_in_cache_low_missrate(self):
        llc = LlcModel(size_mib=30.0)
        assert llc.miss_rate(4.0, reuse_factor=0.5, n_sharers=1) < 0.01

    def test_oversized_working_set_misses(self):
        llc = LlcModel(size_mib=30.0)
        streaming = llc.miss_rate(300.0, reuse_factor=0.0, n_sharers=1)
        blocked = llc.miss_rate(300.0, reuse_factor=0.9, n_sharers=1)
        assert streaming > 0.8
        assert blocked < streaming

    def test_sharing_shrinks_effective_capacity(self):
        llc = LlcModel(size_mib=30.0)
        alone = llc.miss_rate(20.0, 0.2, n_sharers=1)
        crowded = llc.miss_rate(20.0, 0.2, n_sharers=16)
        assert crowded > alone

    def test_missrate_bounds(self):
        llc = LlcModel(size_mib=1.0)
        for ws in (0.1, 10.0, 1e4):
            for reuse in (0.0, 0.5, 1.0):
                m = llc.miss_rate(ws, reuse, 8)
                assert 0.0 < m <= 1.0

    def test_memory_stall_cycles(self):
        ct = _raptor_cove()
        none = memory_stall_cycles(ct, llc_refs=0.0, llc_miss_rate=0.9)
        some = memory_stall_cycles(ct, llc_refs=1e6, llc_miss_rate=0.5)
        assert none == 0.0
        assert some > 0.0
        # Full MLP overlap hides everything.
        assert memory_stall_cycles(ct, 1e6, 0.5, mlp_overlap=1.0) == 0.0
