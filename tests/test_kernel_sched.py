"""Unit tests for affinity masks and the scheduler."""

import pytest

from repro.hw.machines import raptor_lake_i7_13700
from repro.kernel.sched import (
    CpuMask,
    Scheduler,
    format_cpu_list,
    parse_cpu_list,
    taskset,
)
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestCpuList:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", {0}),
            ("0,2,4", {0, 2, 4}),
            ("0-3", {0, 1, 2, 3}),
            ("0,2,4,6,8,10,12,14,16-24", {0, 2, 4, 6, 8, 10, 12, 14} | set(range(16, 25))),
            ("", set()),
            (" 1 , 3 - 5 ", {1, 3, 4, 5}),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_cpu_list(text) == expected

    def test_parse_rejects_backwards_range(self):
        with pytest.raises(ValueError):
            parse_cpu_list("5-2")

    @pytest.mark.parametrize(
        "cpus,expected",
        [
            ([0, 1, 2, 3], "0-3"),
            ([0, 2, 3, 4, 8], "0,2-4,8"),
            ([5], "5"),
            ([], ""),
        ],
    )
    def test_format(self, cpus, expected):
        assert format_cpu_list(cpus) == expected

    def test_roundtrip(self):
        cpus = {0, 1, 2, 5, 7, 8, 9, 23}
        assert parse_cpu_list(format_cpu_list(cpus)) == cpus

    def test_mask_validates_range(self):
        with pytest.raises(ValueError):
            CpuMask("0-30", n_cpus=24)
        with pytest.raises(ValueError):
            CpuMask([], n_cpus=24)

    def test_taskset(self):
        t = SimThread("x", Program([]))
        taskset(t, "4-5", n_cpus=6)
        assert t.affinity == {4, 5}


def _threads(n, affinity=None):
    out = []
    for i in range(n):
        t = SimThread(f"t{i}", Program([ComputePhase(1e6, RATES)]), affinity=affinity)
        t.tid = 100 + i
        out.append(t)
    return out


class TestScheduler:
    def setup_method(self):
        self.topo = raptor_lake_i7_13700().topology

    def test_single_thread_lands_on_pcore(self):
        sched = Scheduler(self.topo)
        (t,) = _threads(1)
        placed = sched.schedule([t])
        cpu = next(iter(placed))
        assert self.topo.core(cpu).ctype.name == "P-core"
        assert self.topo.core(cpu).smt_thread == 0

    def test_sticky_placement(self):
        sched = Scheduler(self.topo)
        (t,) = _threads(1)
        first = next(iter(sched.schedule([t])))
        second = next(iter(sched.schedule([t])))
        assert first == second

    def test_work_conserving_spread(self):
        """16 threads spread over 16 distinct CPUs (no stacking)."""
        sched = Scheduler(self.topo)
        ts = _threads(16)
        placed = sched.schedule(ts)
        assert len(placed) == 16
        assert all(len(v) == 1 for v in placed.values())

    def test_oversubscribed_shares(self):
        sched = Scheduler(self.topo)
        ts = _threads(3, affinity={0})
        placed = sched.schedule(ts)
        entries = placed[0]
        assert len(entries) == 3
        assert sum(e.share for e in entries) == pytest.approx(1.0)

    def test_affinity_never_violated(self):
        sched = Scheduler(self.topo, seed=5, migrate_jitter=0.5, rebalance_jitter=0.3)
        ts = _threads(4, affinity={2, 3})
        for _ in range(200):
            placed = sched.schedule(ts)
            for cpu, entries in placed.items():
                if entries:
                    assert cpu in {2, 3}

    def test_idle_cpu_pulls_waiters(self):
        sched = Scheduler(self.topo)
        a, b = _threads(2)
        # Force both onto one CPU initially via affinity, then free them.
        a.affinity = b.affinity = {0}
        sched.schedule([a, b])
        a.affinity = b.affinity = None
        placed = sched.schedule([a, b])
        cpus = [c for c, es in placed.items() if es]
        assert len(cpus) == 2

    def test_migration_accounting(self):
        sched = Scheduler(self.topo, seed=1, migrate_jitter=0.5)
        (t,) = _threads(1)
        for _ in range(100):
            sched.schedule([t])
        assert t.nr_migrations > 0
        assert sched.total_migrations >= t.nr_migrations

    def test_weight_proportional_share(self):
        sched = Scheduler(self.topo)
        a, b = _threads(2, affinity={0})
        a.weight = 3.0
        placed = sched.schedule([a, b])
        shares = {e.thread.name: e.share for e in placed[0]}
        assert shares["t0"] == pytest.approx(0.75)
        assert shares["t1"] == pytest.approx(0.25)


def _reference_balance(sched, placed, load):
    """The original pass-3 restart loop (re-scan from scratch after every
    move), kept as the behavioural reference for the single-sweep version."""
    moved = True
    while moved:
        moved = False
        idle = [c for c, ts in placed.items() if not ts]
        if not idle:
            break
        for cpu, ts in placed.items():
            if len(ts) <= 1:
                continue
            for t in reversed(ts):
                targets = [c for c in idle if t.allowed_on(c)]
                if targets:
                    target = min(
                        targets, key=lambda c: sched._placement_rank(c, load)
                    )
                    ts.remove(t)
                    placed[target].append(t)
                    load[cpu] -= 1
                    load[target] += 1
                    idle.remove(target)
                    moved = True
                    break
            if moved:
                break


class TestBalanceSweepEquivalence:
    """The single-sweep pass 3 must produce the exact placements of the
    original restart-after-every-move loop, across randomized scenarios."""

    def setup_method(self):
        self.topo = raptor_lake_i7_13700().topology

    def _random_threads(self, rng):
        cpu_ids = [c.cpu_id for c in self.topo.cores]
        n = rng.randrange(1, 26)
        out = []
        for i in range(n):
            affinity = None
            if rng.random() < 0.4:
                k = rng.randrange(1, 5)
                affinity = set(rng.sample(cpu_ids, k))
            t = SimThread(
                f"t{i}", Program([ComputePhase(1e6, RATES)]), affinity=affinity
            )
            t.tid = 100 + i
            if rng.random() < 0.7:
                allowed = sorted(affinity) if affinity else cpu_ids
                t.last_cpu = rng.choice(allowed)
            out.append(t)
        return out

    def test_matches_reference_on_random_scenarios(self):
        import copy
        import random

        for seed in range(40):
            rng = random.Random(seed)
            threads = self._random_threads(rng)
            twins = copy.deepcopy(threads)

            sched = Scheduler(self.topo)
            result = sched.schedule(threads)
            by_cpu = {c: [e.thread.tid for e in es] for c, es in result.items()}

            # Reference: passes 1+2 exactly as the scheduler runs them
            # (no jitter, so no RNG draws), then the original pass 3.
            ref_sched = Scheduler(self.topo)
            load = {c.cpu_id: 0 for c in self.topo.cores}
            placed = {c.cpu_id: [] for c in self.topo.cores}
            fresh = []
            for t in twins:
                if t.last_cpu is not None and t.allowed_on(t.last_cpu):
                    placed[t.last_cpu].append(t)
                    load[t.last_cpu] += 1
                else:
                    fresh.append(t)
            for t in fresh:
                allowed = ref_sched._allowed_cpus(t)
                if not allowed:
                    continue
                target = min(
                    allowed, key=lambda c: ref_sched._placement_rank(c, load)
                )
                placed[target].append(t)
                load[target] += 1
            _reference_balance(ref_sched, placed, load)
            ref_by_cpu = {
                c: [t.tid for t in ts] for c, ts in placed.items() if ts
            }

            assert by_cpu == ref_by_cpu, f"divergence at scenario seed {seed}"
