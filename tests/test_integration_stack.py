"""Full-stack integration: PAPI measuring real workloads end to end."""

import pytest

from repro.hpl import HplConfig
from repro.hpl.model import hpl_steps, hpl_flops
from repro.hpl.runner import HplCoordinator, HplThreadSource
from repro.hpl.variants import VARIANTS
from repro.monitor import PerfRecord
from repro.papi import Papi
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestHplUnderPapi:
    """HPL instrumented with per-thread PAPI EventSets — the paper's
    target use case: calipered measurement inside a real HPC code."""

    def test_papi_counts_hpl_flops(self):
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        papi = Papi(system, mode="hybrid")
        config = HplConfig(n=2304, nb=192)
        cpus = system.topology.primary_threads()
        ctypes = [system.topology.core(c).ctype for c in cpus]
        coord = HplCoordinator(hpl_steps(config), VARIANTS["intel"], ctypes)

        threads = []
        esids = []
        for slot, cpu in enumerate(cpus):
            src = HplThreadSource(coord, slot, ctypes[slot], nb=config.nb)
            t = system.machine.spawn(
                SimThread(f"hpl-{slot}", src, affinity={cpu})
            )
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "PAPI_FP_OPS")
            papi.start(es)
            threads.append(t)
            esids.append(es)

        assert system.machine.run_until_done(threads, max_s=600)
        total_flops = sum(papi.stop(es)[0] for es in esids)
        assert total_flops == pytest.approx(hpl_flops(config.n), rel=0.02)

    def test_perf_record_profile_of_hpl(self):
        """Sampled profile shows the all-core HPL work split by core type."""
        system = System("raptor-lake-i7-13700", dt_s=0.005)
        config = HplConfig(n=4608, nb=192)
        cpus = system.topology.primary_threads()
        ctypes = [system.topology.core(c).ctype for c in cpus]
        coord = HplCoordinator(hpl_steps(config), VARIANTS["openblas"], ctypes)
        threads = [
            system.machine.spawn(
                SimThread(
                    f"hpl-{i}",
                    HplThreadSource(coord, i, ctypes[i], nb=config.nb),
                    affinity={cpu},
                )
            )
            for i, cpu in enumerate(cpus)
        ]
        rec = PerfRecord(system, period=10_000_000)
        rec.attach(threads)
        assert system.machine.run_until_done(threads, max_s=600)
        report = rec.report()
        rec.close()
        # Both core types show up, with the P-cores dominating (Table III).
        assert report.share("cpu_core") > report.share("cpu_atom") > 0.0


class TestCrossMachineMatrix:
    """The §V-4 test matrix: hybrid EventSets on every machine preset."""

    @pytest.mark.parametrize(
        "machine,n_core_pmus",
        [
            ("raptor-lake-i7-13700", 2),
            ("orangepi-800", 2),
            ("dynamiq-three-tier", 3),
            ("xeon-homogeneous", 1),
        ],
    )
    def test_tot_ins_preset_everywhere(self, machine, n_core_pmus):
        system = System(machine, dt_s=1e-4)
        papi = Papi(system, mode="hybrid")
        t = system.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]))
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        entry = papi.eventset(es).entries[0]
        assert len(entry.slot_indices) == n_core_pmus
        papi.start(es)
        system.machine.run_until_done([t], max_s=5)
        assert papi.stop(es)[0] == pytest.approx(1e6)

    @pytest.mark.parametrize(
        "machine", ["raptor-lake-i7-13700", "orangepi-800", "dynamiq-three-tier"]
    )
    def test_per_core_type_pinning_matrix(self, machine):
        """For each core type: pin there, and check that only that PMU's
        slot of the derived preset counts."""
        system = System(machine, dt_s=1e-4)
        papi = Papi(system, mode="hybrid")
        for ct in system.topology.core_types:
            cpu = system.topology.cpus_of_type(ct.name)[0]
            t = system.machine.spawn(
                SimThread(f"pin-{ct.name}", Program([ComputePhase(1e5, RATES)]),
                          affinity={cpu})
            )
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "PAPI_TOT_INS")
            papi.start(es)
            system.machine.run_until_done([t], max_s=5)
            assert papi.stop(es)[0] == pytest.approx(1e5)
            assert set(t.counters) == {ct.pmu_name}
            papi.destroy_eventset(es)


class TestMeasurementOfMeasurement:
    def test_papi_overhead_visible_in_counts(self):
        """PAPI's own overhead instructions are themselves counted — the
        'minor overhead inherent in using PAPI' from §IV-F."""
        system = System("raptor-lake-i7-13700", dt_s=1e-4)
        papi = Papi(system, mode="hybrid")
        p_cpu = system.topology.cpus_of_type("P-core")[0]
        readings = []
        holder = {}

        def setup(thread):
            es = papi.create_eventset()
            papi.attach(es, thread)
            papi.add_event(es, "adl_glc::INST_RETIRED:ANY", caller=thread)
            papi.start(es, caller=thread)
            holder["es"] = es

        def snap(thread):
            readings.append(papi.read(holder["es"], caller=thread)[0])

        items = [ControlOp(setup)]
        for _ in range(5):
            items += [ComputePhase(1e6, RATES), ControlOp(snap)]
        t = system.machine.spawn(SimThread("app", Program(items), affinity={p_cpu}))
        system.machine.run_until_done([t], max_s=5)
        # Deltas between successive reads exceed the 1e6 of pure work by
        # a small positive overhead (the read syscall of the previous
        # snapshot plus library code).
        deltas = [b - a for a, b in zip(readings, readings[1:])]
        for d in deltas:
            assert 1e6 < d < 1.02e6
