"""Supervisor: crash isolation, retry classification, and resume.

The acceptance bar: SIGKILLing a sweep (supervisor or worker, any
moment) and resuming must produce results bit-identical to a sweep that
was never interrupted.  Workers run as real subprocesses here — these
tests exercise the same code path ``tools/sweep.py`` drives.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.supervisor import (
    DONE,
    EXIT_PERMANENT,
    EXIT_TRANSIENT,
    FAILED,
    Manifest,
    RunRecord,
    RunSpec,
    Supervisor,
)
from repro.supervisor.worker import run_spec

#: Small, fast HPL point used throughout.
HPL_PARAMS = {"n": 1000, "nb": 128, "slice_s": 0.02, "dt_s": 0.01}


def _supervisor(tmp_path, **kw):
    kw.setdefault("max_attempts", 3)
    kw.setdefault("backoff_s", 0.0)
    kw.setdefault("wall_timeout_s", 120.0)
    kw.setdefault("checkpoint_every_s", 0.04)
    kw.setdefault("log", lambda msg: None)
    return Supervisor(str(tmp_path / "sweep"), **kw)


def _result(sup, run_id):
    with open(os.path.join(sup.out_dir, run_id, "result.json")) as fh:
        return json.load(fh)


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        m = Manifest(path, meta={"k": 1})
        m.add_run(RunRecord(run_id="a", kind="hpl", params={"n": 4}))
        m.runs["a"].status = DONE
        m.runs["a"].stuck = [{"name": "t", "cpu": 3, "core_type": "E-core"}]
        m.save()
        back = Manifest.load(path)
        assert back.meta == {"k": 1}
        assert back.runs["a"].to_json() == m.runs["a"].to_json()

    def test_version_gate(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        Manifest(path).save()
        data = json.load(open(path))
        data["version"] = 999
        json.dump(data, open(path, "w"))
        with pytest.raises(ValueError):
            Manifest.load(path)

    def test_duplicate_run_id_rejected(self, tmp_path):
        m = Manifest(str(tmp_path / "m.json"))
        m.add_run(RunRecord(run_id="a", kind="hpl", params={}))
        with pytest.raises(ValueError):
            m.add_run(RunRecord(run_id="a", kind="hpl", params={}))

    def test_interrupted_running_run_is_pending_again(self, tmp_path):
        m = Manifest(str(tmp_path / "m.json"))
        m.add_run(RunRecord(run_id="a", kind="hpl", params={}, status=DONE))
        m.add_run(RunRecord(run_id="b", kind="hpl", params={}, status="running"))
        todo = [r.run_id for r in m.pending_runs()]
        assert todo == ["b"]


class TestWorkerExitCodes:
    """``run_spec`` is the worker main minus argv; drive it in-process."""

    def test_unknown_kind_is_permanent(self, tmp_path):
        out = str(tmp_path / "r")
        code = run_spec({"run_id": "x", "kind": "nope", "params": {}, "out_dir": out})
        assert code == EXIT_PERMANENT
        err = json.load(open(os.path.join(out, "error.json")))
        assert err["classification"] == "permanent"
        assert "unknown run kind" in err["message"]

    def test_deterministic_exception_is_permanent(self, tmp_path):
        out = str(tmp_path / "r")
        code = run_spec(
            {"run_id": "x", "kind": "failing", "params": {"message": "boom"},
             "out_dir": out}
        )
        assert code == EXIT_PERMANENT
        err = json.load(open(os.path.join(out, "error.json")))
        assert err["type"] == "ValueError"
        assert "boom" in err["message"]

    def test_sim_timeout_is_transient_with_stuck_details(self, tmp_path):
        out = str(tmp_path / "r")
        params = dict(HPL_PARAMS, max_sim_s=0.05)  # far too little sim time
        code = run_spec(
            {"run_id": "x", "kind": "hpl", "params": params, "out_dir": out,
             "checkpoint_every_s": 0.02}
        )
        assert code == EXIT_TRANSIENT
        err = json.load(open(os.path.join(out, "error.json")))
        assert err["type"] == "SimTimeout"
        assert err["classification"] == "transient"
        # Satellite: the timeout names the stuck threads' CPU and core
        # type, and the last checkpoint taken before the wedge.
        assert err["stuck"], "stuck thread details missing"
        for d in err["stuck"]:
            assert "cpu" in d and "core_type" in d and d["name"].startswith("hpl-")
        assert err["checkpoint_path"] == os.path.join(out, "checkpoint.snap")
        assert os.path.exists(err["checkpoint_path"])

    def test_corrupt_checkpoint_is_transient(self, tmp_path):
        out = str(tmp_path / "r")
        bad = str(tmp_path / "bad.snap")
        open(bad, "wb").write(b"garbage")
        code = run_spec(
            {"run_id": "x", "kind": "hpl", "params": HPL_PARAMS, "out_dir": out,
             "resume_from": bad}
        )
        assert code == EXIT_TRANSIENT
        err = json.load(open(os.path.join(out, "error.json")))
        assert err["bad_checkpoint"] == bad

    def test_success_writes_result(self, tmp_path):
        out = str(tmp_path / "r")
        code = run_spec(
            {"run_id": "x", "kind": "hpl", "params": HPL_PARAMS, "out_dir": out}
        )
        assert code == 0
        result = json.load(open(os.path.join(out, "result.json")))
        assert result["gflops"] > 0
        assert len(result["state_digest"]) == 64


class TestSupervisorSweeps:
    def test_crashed_run_resumes_from_checkpoint_bit_identical(self, tmp_path):
        """A worker SIGKILLed mid-run retries from its checkpoint and
        ends bit-identical to a run that never crashed."""
        sup = _supervisor(tmp_path)
        manifest = sup.run(
            [
                RunSpec("steady", "hpl", dict(HPL_PARAMS)),
                RunSpec(
                    "flaky",
                    "flaky-hpl",
                    dict(HPL_PARAMS, crash_at_s=0.08, crash_on_attempts=[1]),
                ),
            ]
        )
        assert manifest.runs["steady"].status == DONE
        assert manifest.runs["steady"].attempts == 1
        flaky = manifest.runs["flaky"]
        assert flaky.status == DONE
        assert flaky.attempts == 2
        assert flaky.last_error is None
        # The retry resumed from the checkpoint, not from scratch, and
        # still converged on the identical final state.
        assert flaky.checkpoint_path and os.path.exists(flaky.checkpoint_path)
        assert (
            _result(sup, "flaky")["state_digest"]
            == _result(sup, "steady")["state_digest"]
        )

    def test_permanent_failure_stops_retrying(self, tmp_path):
        sup = _supervisor(tmp_path)
        manifest = sup.run([RunSpec("bad", "failing", {"message": "nope"})])
        rec = manifest.runs["bad"]
        assert rec.status == FAILED
        assert rec.attempts == 1  # no retries burned on a deterministic error
        assert rec.last_error["classification"] == "permanent"

    def test_transient_failures_exhaust_attempts(self, tmp_path):
        # A huge checkpoint cadence pins the only checkpoint at the first
        # slice boundary, so every retry replays through crash_at_s and
        # dies again instead of resuming past it.
        sup = _supervisor(tmp_path, max_attempts=2, checkpoint_every_s=10.0)
        manifest = sup.run(
            [
                RunSpec(
                    "always-crashes",
                    "flaky-hpl",
                    dict(HPL_PARAMS, crash_at_s=0.08, crash_on_attempts=[1, 2, 3]),
                )
            ]
        )
        rec = manifest.runs["always-crashes"]
        assert rec.status == FAILED
        assert rec.attempts == 2
        assert rec.last_error["type"] == "WorkerCrash"

    def test_resume_skips_done_and_restores_in_flight(self, tmp_path):
        """Simulates a killed sweep: first run done, second was mid-run
        with a checkpoint on disk when the supervisor died.  The forged
        crash state is produced the way a real crash produces it — by
        cutting the journal after "two" launched but before it finished."""
        sup = _supervisor(tmp_path)
        runs = [
            RunSpec("one", "hpl", dict(HPL_PARAMS)),
            RunSpec("two", "hpl", dict(HPL_PARAMS, n=2000)),
        ]
        sup.run(runs)
        digest_two = _result(sup, "two")["state_digest"]

        # Rewind the journal to the instant after "two"'s worker was
        # launched: exactly what a SIGKILLed supervisor leaves behind
        # (its "done" was never journaled).
        with open(sup.journal_path) as fh:
            lines = fh.read().splitlines(keepends=True)
        kept = [
            line
            for line in lines
            if not (
                json.loads(line).get("run_id") == "two"
                and json.loads(line)["type"] not in ("add", "launch")
            )
        ]
        with open(sup.journal_path, "w") as fh:
            fh.writelines(kept)
        os.unlink(os.path.join(sup.out_dir, "two", "result.json"))

        events = []
        sup2 = _supervisor(tmp_path, log=events.append)
        manifest2 = sup2.run(runs, resume=True)
        assert manifest2.runs["one"].status == DONE
        assert manifest2.runs["two"].status == DONE
        assert any("skipped" in e for e in events)
        assert any("resuming from" in e for e in events)
        # Restored continuation == the uninterrupted original.
        assert _result(sup2, "two")["state_digest"] == digest_two

    def test_wall_clock_timeout_kills_worker(self, tmp_path):
        sup = _supervisor(tmp_path, wall_timeout_s=0.2, max_attempts=1)
        manifest = sup.run([RunSpec("slow", "hpl", dict(HPL_PARAMS, n=20000))])
        rec = manifest.runs["slow"]
        assert rec.status == FAILED
        # The pool's liveness monitor names the verdict: past the wall
        # deadline (a "slow" kill), classified transient.
        assert rec.last_error["type"] in ("WallTimeout", "StuckWorker")
        assert rec.last_error["classification"] == "transient"
