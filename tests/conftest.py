"""Shared fixtures: simulated systems of every machine preset.

Also installs a SIGALRM-based per-test wall-clock timeout: a wedged test
(a worker subprocess that never exits, a sim loop that stopped
progressing) aborts with a traceback instead of hanging CI.  The stdlib
mechanism is used because ``pytest-timeout`` is not part of the baked
test environment.  Override per test with ``@pytest.mark.timeout(N)``;
``0`` disables.
"""

from __future__ import annotations

import signal

import pytest

from repro.hw.machines import (
    dynamiq_three_tier,
    homogeneous_xeon,
    orangepi_800,
    raptor_lake_i7_13700,
)
from repro.system import System

#: Generous default: the slowest tier-1 tests (multi-attempt supervisor
#: sweeps with real worker subprocesses) finish well under a minute.
DEFAULT_TEST_TIMEOUT_S = 120


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit (0 disables; "
        f"default {DEFAULT_TEST_TIMEOUT_S}s via SIGALRM)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    seconds = int(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT_S
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds}s wall-clock limit "
            "(see tests/conftest.py; raise with @pytest.mark.timeout)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def raptor() -> System:
    """Raptor Lake with a fine tick for short workloads."""
    return System("raptor-lake-i7-13700", dt_s=1e-4)


@pytest.fixture
def raptor_coarse() -> System:
    """Raptor Lake with the default experiment tick."""
    return System("raptor-lake-i7-13700", dt_s=0.02)


@pytest.fixture
def orangepi() -> System:
    return System("orangepi-800", dt_s=1e-4)


@pytest.fixture
def orangepi_coarse() -> System:
    return System("orangepi-800", dt_s=0.02)


@pytest.fixture
def xeon() -> System:
    return System("xeon-homogeneous", dt_s=1e-4)


@pytest.fixture
def dynamiq() -> System:
    return System("dynamiq-three-tier", dt_s=1e-4)


@pytest.fixture
def orangepi_acpi() -> System:
    return System(orangepi_800(firmware="acpi"), dt_s=1e-4)


@pytest.fixture(params=["raptor-lake-i7-13700", "orangepi-800", "xeon-homogeneous", "dynamiq-three-tier"])
def any_system(request) -> System:
    return System(request.param, dt_s=1e-4)
