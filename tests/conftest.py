"""Shared fixtures: simulated systems of every machine preset."""

from __future__ import annotations

import pytest

from repro.hw.machines import (
    dynamiq_three_tier,
    homogeneous_xeon,
    orangepi_800,
    raptor_lake_i7_13700,
)
from repro.system import System


@pytest.fixture
def raptor() -> System:
    """Raptor Lake with a fine tick for short workloads."""
    return System("raptor-lake-i7-13700", dt_s=1e-4)


@pytest.fixture
def raptor_coarse() -> System:
    """Raptor Lake with the default experiment tick."""
    return System("raptor-lake-i7-13700", dt_s=0.02)


@pytest.fixture
def orangepi() -> System:
    return System("orangepi-800", dt_s=1e-4)


@pytest.fixture
def orangepi_coarse() -> System:
    return System("orangepi-800", dt_s=0.02)


@pytest.fixture
def xeon() -> System:
    return System("xeon-homogeneous", dt_s=1e-4)


@pytest.fixture
def dynamiq() -> System:
    return System("dynamiq-three-tier", dt_s=1e-4)


@pytest.fixture
def orangepi_acpi() -> System:
    return System(orangepi_800(firmware="acpi"), dt_s=1e-4)


@pytest.fixture(params=["raptor-lake-i7-13700", "orangepi-800", "xeon-homogeneous", "dynamiq-three-tier"])
def any_system(request) -> System:
    return System(request.param, dt_s=1e-4)
