"""Robustness: mode equivalence, seed sweeps, closed-loop invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.hybrid_eventset import run_hybrid_test
from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5))


class TestModeEquivalence:
    """The hybrid redesign must not change behaviour on traditional
    machines — the backwards-compatibility worry running through §IV/§V."""

    def test_legacy_and_hybrid_identical_on_homogeneous(self):
        results = {}
        for mode in ("legacy", "hybrid"):
            system = System("xeon-homogeneous", dt_s=1e-4, seed=11)
            papi = Papi(system, mode=mode)
            t = system.machine.spawn(
                SimThread("app", Program([ComputePhase(3e6, RATES)]), affinity={0})
            )
            es = papi.create_eventset()
            papi.attach(es, t)
            for name in ("PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L3_TCM",
                         "INST_RETIRED:ANY"):
                papi.add_event(es, name)
            papi.start(es)
            system.machine.run_until_done([t], max_s=5)
            results[mode] = papi.stop(es)
        assert results["legacy"] == results["hybrid"]

    def test_single_group_on_homogeneous_in_both_modes(self, xeon):
        for mode in ("legacy", "hybrid"):
            papi = Papi(xeon, mode=mode)
            t = xeon.machine.spawn(
                SimThread(f"t-{mode}", Program([ComputePhase(1e5, RATES)]))
            )
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "PAPI_TOT_INS")
            papi.add_event(es, "PAPI_TOT_CYC")
            assert papi.num_groups(es) == 1, mode

    def test_pinned_hybrid_matches_legacy_on_raptor(self, raptor):
        """Pinned to a P-core, the hybrid EventSet's P slot must agree
        exactly with what legacy PAPI would have measured."""
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        values = {}
        for mode in ("legacy", "hybrid"):
            papi = Papi(raptor, mode=mode)
            t = raptor.machine.spawn(
                SimThread(f"app-{mode}", Program([ComputePhase(2e6, RATES)]),
                          affinity={p_cpu})
            )
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
            if mode == "hybrid":
                papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
            papi.start(es)
            raptor.machine.run_until_done([t], max_s=5)
            values[mode] = papi.stop(es)
        assert values["hybrid"][0] == values["legacy"][0]
        assert values["hybrid"][1] == 0


class TestSeedSweep:
    def test_hybrid_split_statistics(self):
        """Across seeds the free-running §IV-F test always conserves the
        instruction count, and E-core residency stays in a plausible
        band (the paper saw ~17%)."""
        e_shares = []
        for seed in range(8):
            r = run_hybrid_test(mode="hybrid", reps=40, seed=seed)
            assert r.avg_total == pytest.approx(1.0108e6, rel=1e-3)
            e_shares.append(r.average(1) / r.avg_total)
        mean_share = sum(e_shares) / len(e_shares)
        assert 0.02 < mean_share < 0.40
        assert any(s > 0 for s in e_shares)


class TestClosedLoopInvariants:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_threads=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=20),
    )
    def test_rapl_defends_pl1_in_steady_state(self, n_threads, seed):
        """Whatever the load, once past the PL1 window the average
        package power stays near or below the 65 W limit."""
        system = System("raptor-lake-i7-13700", dt_s=0.05, seed=seed)
        for i in range(n_threads):
            system.machine.spawn(
                SimThread(f"w{i}", Program([ComputePhase(1e14, RATES)]))
            )
        system.machine.run_for(40.0)   # past the 28 s PL1 window
        powers = []
        def hook(m):
            powers.append(m.last_power.package_w)
        system.machine.tick_hooks.append(hook)
        system.machine.run_for(20.0)
        avg = sum(powers) / len(powers)
        assert avg <= 65.0 * 1.10

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=20))
    def test_orangepi_defends_trip_temperature(self, seed):
        system = System("orangepi-800", dt_s=0.05, seed=seed)
        for i in range(6):
            system.machine.spawn(
                SimThread(f"w{i}", Program([ComputePhase(1e13, RATES)]),
                          affinity={i})
            )
        system.machine.run_for(60.0)
        temps = []
        system.machine.tick_hooks.append(
            lambda m: temps.append(m.thermal.temp_c)
        )
        system.machine.run_for(30.0)
        assert max(temps) < system.spec.thermal_trip_c + 4.0
