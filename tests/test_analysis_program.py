"""Tests for repro-lint's whole-program passes.

Covers the interprocedural PAPI typestate (``PAPI-INTERPROC``), the
journal and wire protocol-exhaustiveness passes (``PROTO-*``), the
determinism taint pass (``DET-TAINT``), fork/signal safety
(``FORK-SAFETY``/``SIGNAL-SAFETY``), the ``--changed-only`` reporting
path, and the move/rename stability of baseline fingerprints.  Each
rule gets a good/bad fixture pair; the service-seeding tests mutate a
copy of the *real* supervisor sources to prove a fresh asymmetry is
caught.
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

from repro.analysis import Baseline, run_analysis
from repro.analysis.cli import changed_files

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_many(tmp_path, files, only=None, baseline=None, report_paths=None):
    """Write a multi-file fixture repo and analyze it."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_analysis(
        tmp_path,
        paths=sorted(files),
        only_rules=only,
        baseline=baseline,
        report_paths=report_paths,
    )


def rule_ids(result):
    return sorted(f.rule for f in result.new_findings)


# -- interprocedural PAPI typestate ------------------------------------------


class TestInterprocLifecycle:
    def test_helper_created_handle_leaks_at_call_site(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/x.py": """
                def make(papi):
                    es = papi.create_eventset()
                    return es

                def use(papi):
                    es = make(papi)
                    papi.start(es)
                    papi.stop(es)
                """
            },
            only=["PAPI-INTERPROC"],
        )
        assert rule_ids(result) == ["PAPI-INTERPROC"]
        assert result.new_findings[0].symbol.endswith("use")

    def test_helper_created_handle_destroyed_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/x.py": """
                def make(papi):
                    es = papi.create_eventset()
                    return es

                def use(papi):
                    es = make(papi)
                    papi.start(es)
                    papi.stop(es)
                    papi.destroy_eventset(es)
                """
            },
            only=["PAPI-INTERPROC"],
        )
        assert result.new_findings == []

    def test_closer_helper_transitions_the_argument(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/x.py": """
                def cleanup(es, papi):
                    papi.destroy_eventset(es)

                def use(papi):
                    es = papi.create_eventset()
                    papi.start(es)
                    papi.stop(es)
                    cleanup(es, papi)
                """
            },
            only=["PAPI-INTERPROC", "PAPI-LIFECYCLE"],
        )
        assert result.new_findings == []

    def test_field_stored_handle_with_no_closing_method(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/x.py": """
                class Meter:
                    def __init__(self, papi):
                        self._es = papi.create_eventset()
                """
            },
            only=["PAPI-INTERPROC"],
        )
        assert rule_ids(result) == ["PAPI-INTERPROC"]
        assert "self._es" in result.new_findings[0].message

    def test_field_stored_handle_with_closing_method_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/x.py": """
                class Meter:
                    def __init__(self, papi):
                        self._papi = papi
                        self._es = papi.create_eventset()

                    def close(self):
                        self._papi.destroy_eventset(self._es)
                """
            },
            only=["PAPI-INTERPROC"],
        )
        assert result.new_findings == []


# -- journal protocol exhaustiveness -----------------------------------------

JOURNAL_MODULE = """
    EVENT_TYPES = ("header", "add", "done")


    class Journal:
        def append(self, event):
            pass

        def _apply(self, state, event):
            etype = event["type"]
            if etype == "header":
                return
            if etype == "add":
                state.add(event)
            elif etype == "done":
                state.done(event)
"""


class TestJournalProtocol:
    def test_matched_protocol_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/journal.py": JOURNAL_MODULE,
                "src/repro/supervisor/pool.py": """
                def produce(journal):
                    journal.append({"type": "header"})
                    journal.append({"type": "add"})
                    journal.append({"type": "done"})
                """,
            },
            only=["PROTO-JOURNAL"],
        )
        assert result.new_findings == []

    def test_undeclared_kind_is_an_error_at_the_append(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/journal.py": JOURNAL_MODULE,
                "src/repro/supervisor/pool.py": """
                def produce(journal):
                    journal.append({"type": "header"})
                    journal.append({"type": "add"})
                    journal.append({"type": "done"})
                    journal.append({"type": "retry"})
                """,
            },
            only=["PROTO-JOURNAL"],
        )
        assert rule_ids(result) == ["PROTO-JOURNAL"]
        [finding] = result.new_findings
        assert "'retry'" in finding.message
        assert finding.path == "src/repro/supervisor/pool.py"

    def test_declared_but_unconsumed_kind_is_an_error(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/journal.py": JOURNAL_MODULE.replace(
                    '("header", "add", "done")',
                    '("header", "add", "done", "metrics")',
                ),
                "src/repro/supervisor/pool.py": """
                def produce(journal):
                    journal.append({"type": "header"})
                    journal.append({"type": "add"})
                    journal.append({"type": "done"})
                    journal.append({"type": "metrics"})
                """,
            },
            only=["PROTO-JOURNAL"],
        )
        assert rule_ids(result) == ["PROTO-JOURNAL"]
        [finding] = result.new_findings
        assert "'metrics'" in finding.message
        assert "never consumed" in finding.message
        assert finding.path == "src/repro/supervisor/journal.py"

    def test_declared_but_never_produced_kind_is_a_warning(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/journal.py": JOURNAL_MODULE,
                "src/repro/supervisor/pool.py": """
                def produce(journal):
                    journal.append({"type": "header"})
                    journal.append({"type": "add"})
                """,
            },
            only=["PROTO-JOURNAL"],
        )
        [finding] = result.new_findings
        assert "'done'" in finding.message
        assert "dead protocol" in finding.message
        assert finding.severity.value == "warning"

    def test_ifexp_and_helper_returned_kinds_resolve(self, tmp_path):
        """The real repo's production idioms: IfExp kinds and records
        built by a helper the append site only calls."""
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/journal.py": JOURNAL_MODULE,
                "src/repro/supervisor/pool.py": """
                def add_event(rid):
                    return {"type": "add", "run_id": rid}

                def produce(journal, drained):
                    journal.append({"type": "header"})
                    journal.append(add_event("r1"))
                    journal.append({"type": "done" if drained else "done"})
                """,
            },
            only=["PROTO-JOURNAL"],
        )
        assert result.new_findings == []


# -- wire protocol exhaustiveness --------------------------------------------

SERVER_OK = """
    class Service:
        def _send(self, client, payload):
            pass

        def _reply(self, client, request, payload):
            out = {"op": request.get("op"), "id": request.get("id")}
            out.update(payload)
            return self._send(client, out)

        def _handle_request(self, client, request):
            op = request.get("op")
            if op == "ping":
                self._reply(client, request, {"ok": True, "pid": 1})
            elif op == "submit":
                self._reply(client, request, {"ok": True, "results": []})
            else:
                self._reply(
                    client, request, {"ok": False, "error": "unknown op"}
                )
"""

CLIENT_OK = """
    class ServiceClient:
        def ping(self):
            return self._roundtrip({"op": "ping"})

        def submit(self, specs):
            reply = self._roundtrip({"op": "submit", "specs": specs})
            return reply["results"]

        def _roundtrip(self, request):
            return {}
"""


class TestWireProtocol:
    def test_matched_endpoints_are_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": SERVER_OK,
                "src/repro/supervisor/client.py": CLIENT_OK,
            },
            only=["PROTO-WIRE"],
        )
        assert result.new_findings == []

    def test_unhandled_client_op_is_an_error(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": SERVER_OK,
                "src/repro/supervisor/client.py": CLIENT_OK + """

    class WideClient:
        def frob(self):
            return self._roundtrip({"op": "frob"})

        def _roundtrip(self, request):
            return {}
""",
            },
            only=["PROTO-WIRE"],
        )
        assert rule_ids(result) == ["PROTO-WIRE"]
        [finding] = result.new_findings
        assert "'frob'" in finding.message
        assert finding.path == "src/repro/supervisor/client.py"

    def test_missing_reply_key_is_an_error(self, tmp_path):
        server = SERVER_OK.replace('"results": []', '"out": []')
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": server,
                "src/repro/supervisor/client.py": CLIENT_OK,
            },
            only=["PROTO-WIRE"],
        )
        assert rule_ids(result) == ["PROTO-WIRE"]
        [finding] = result.new_findings
        assert "'results'" in finding.message
        assert finding.path == "src/repro/supervisor/service.py"

    def test_orphan_server_op_is_a_warning(self, tmp_path):
        server = SERVER_OK.replace(
            'elif op == "submit":',
            'elif op == "legacy":\n'
            '                self._reply(client, request, {"ok": True})\n'
            '            elif op == "submit":',
        )
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": server,
                "src/repro/supervisor/client.py": CLIENT_OK,
            },
            only=["PROTO-WIRE"],
        )
        [finding] = result.new_findings
        assert "'legacy'" in finding.message
        assert finding.severity.value == "warning"


class TestWireCorrelation:
    def test_bare_error_send_is_an_error(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": """
                class Service:
                    def _send(self, client, payload):
                        pass

                    def _handle_request(self, client, request):
                        self._send(client, {"ok": False, "error": "nope"})
                """
            },
            only=["PROTO-WIRE-CORR"],
        )
        assert rule_ids(result) == ["PROTO-WIRE-CORR"]

    def test_correlated_error_send_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": """
                class Service:
                    def _send(self, client, payload):
                        pass

                    def _handle_request(self, client, request):
                        self._send(
                            client,
                            {
                                "ok": False,
                                "error": "nope",
                                "op": request.get("op"),
                                "id": request.get("id"),
                            },
                        )
                """
            },
            only=["PROTO-WIRE-CORR"],
        )
        assert result.new_findings == []


# -- seeding asymmetries into a copy of the real service ---------------------


class TestSeededServiceAsymmetries:
    """Acceptance: mutate a fixture copy of the real supervisor sources
    and prove the protocol passes catch the fresh asymmetry."""

    def _copy_supervisor(self, tmp_path) -> Path:
        dest = tmp_path / "src" / "repro" / "supervisor"
        shutil.copytree(REPO_ROOT / "src" / "repro" / "supervisor", dest)
        return dest

    def test_real_supervisor_copy_is_clean(self, tmp_path):
        self._copy_supervisor(tmp_path)
        result = run_analysis(
            tmp_path,
            paths=["src/repro/supervisor"],
            only_rules=["PROTO-JOURNAL", "PROTO-WIRE", "PROTO-WIRE-CORR"],
        )
        assert result.new_findings == []

    def test_seeded_unhandled_journal_kind_is_detected(self, tmp_path):
        dest = self._copy_supervisor(tmp_path)
        pool = dest / "pool.py"
        text = pool.read_text()
        assert '"type": "done"' in text
        pool.write_text(text.replace('"type": "done"', '"type": "done2"', 1))
        result = run_analysis(
            tmp_path,
            paths=["src/repro/supervisor"],
            only_rules=["PROTO-JOURNAL"],
        )
        assert any(
            "'done2'" in f.message and "not declared" in f.message
            for f in result.new_findings
        )

    def test_seeded_unmatched_wire_op_is_detected(self, tmp_path):
        dest = self._copy_supervisor(tmp_path)
        client = dest / "client.py"
        text = client.read_text()
        assert '{"op": "ping"}' in text
        client.write_text(text.replace('{"op": "ping"}', '{"op": "ping2"}'))
        result = run_analysis(
            tmp_path,
            paths=["src/repro/supervisor"],
            only_rules=["PROTO-WIRE"],
        )
        assert any(
            "'ping2'" in f.message and "no _handle_request" in f.message
            for f in result.new_findings
        )


# -- determinism taint -------------------------------------------------------


class TestDeterminismTaint:
    def test_wallclock_into_journal_append(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/pool.py": """
                import time


                class Pool:
                    def __init__(self, journal):
                        self.journal = journal

                    def finish(self, rid):
                        now = time.time()
                        self.journal.append(
                            {"type": "done", "run_id": rid, "at": now}
                        )
                """
            },
            only=["DET-TAINT"],
        )
        assert rule_ids(result) == ["DET-TAINT"]
        assert "journal append" in result.new_findings[0].message

    def test_taint_through_helper_return_into_digest(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/queue.py": """
                import time


                def stamp():
                    return time.time()


                def cache_key(spec, spec_digest):
                    salt = stamp()
                    return spec_digest(spec, salt)
                """
            },
            only=["DET-TAINT"],
        )
        assert rule_ids(result) == ["DET-TAINT"]
        assert "digest input" in result.new_findings[0].message
        assert "'salt'" in result.new_findings[0].message

    def test_injected_clock_for_scheduling_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/pool.py": """
                import time


                class Pool:
                    def __init__(self, journal, clock=time.monotonic):
                        self.clock = clock
                        self.journal = journal

                    def finish(self, rid, deadline):
                        now = self.clock()
                        if now > deadline:
                            return
                        self.journal.append({"type": "done", "run_id": rid})
                """
            },
            only=["DET-TAINT"],
        )
        assert result.new_findings == []


# -- fork / signal safety ----------------------------------------------------


class TestForkSafety:
    def test_popen_without_new_session(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/pool.py": """
                import subprocess


                def launch(cmd):
                    return subprocess.Popen(cmd)
                """
            },
            only=["FORK-SAFETY"],
        )
        assert rule_ids(result) == ["FORK-SAFETY"]
        assert "start_new_session" in result.new_findings[0].message

    def test_popen_with_new_session_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/pool.py": """
                import subprocess


                def launch(cmd):
                    return subprocess.Popen(cmd, start_new_session=True)
                """
            },
            only=["FORK-SAFETY"],
        )
        assert result.new_findings == []

    def test_spawn_while_holding_a_lock(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/pool.py": """
                import subprocess


                class Pool:
                    def launch(self, cmd):
                        with self._lock:
                            return subprocess.Popen(
                                cmd, start_new_session=True
                            )
                """
            },
            only=["FORK-SAFETY"],
        )
        assert rule_ids(result) == ["FORK-SAFETY"]
        assert "holding" in result.new_findings[0].message


class TestSignalSafety:
    def test_logging_handler_is_flagged_transitively(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": """
                import signal


                class Service:
                    def log(self, msg):
                        print(msg)

                    def _on_term(self, signum, frame):
                        self.log("bye")

                    def serve(self):
                        signal.signal(signal.SIGTERM, self._on_term)
                """
            },
            only=["SIGNAL-SAFETY"],
        )
        assert rule_ids(result) == ["SIGNAL-SAFETY"]
        assert "print()" in result.new_findings[0].message
        assert "_on_term" in result.new_findings[0].message

    def test_flags_and_os_write_handler_is_clean(self, tmp_path):
        result = lint_many(
            tmp_path,
            {
                "src/repro/supervisor/service.py": """
                import os
                import signal


                class Service:
                    def request_drain(self):
                        self._draining = True

                    def _on_term(self, signum, frame):
                        self._shutdown = True
                        self.request_drain()
                        os.write(2, b"term\\n")

                    def serve(self):
                        signal.signal(signal.SIGTERM, self._on_term)
                """
            },
            only=["SIGNAL-SAFETY"],
        )
        assert result.new_findings == []

    def test_live_supervisor_handlers_are_safe(self):
        """The shipped service/pool/sweep handlers must stay flag-only."""
        result = run_analysis(
            REPO_ROOT,
            paths=["src/repro/supervisor", "tools"],
            only_rules=["SIGNAL-SAFETY"],
        )
        assert result.new_findings == []


# -- changed-only reporting --------------------------------------------------


class TestChangedOnly:
    FILES = {
        "src/repro/supervisor/a.py": """
            import subprocess


            def launch_a(cmd):
                return subprocess.Popen(cmd)
        """,
        "src/repro/supervisor/b.py": """
            import subprocess


            def launch_b(cmd):
                return subprocess.Popen(cmd)
        """,
    }

    def test_filtered_findings_match_the_full_run(self, tmp_path):
        full = lint_many(tmp_path, self.FILES, only=["FORK-SAFETY"])
        assert len(full.new_findings) == 2
        changed = run_analysis(
            tmp_path,
            paths=sorted(self.FILES),
            only_rules=["FORK-SAFETY"],
            report_paths=["src/repro/supervisor/a.py"],
        )
        expected = [
            f
            for f in full.new_findings
            if f.path == "src/repro/supervisor/a.py"
        ]
        assert changed.new_findings == expected

    def test_program_rule_findings_survive_filtering(self, tmp_path):
        files = {
            "src/repro/supervisor/journal.py": JOURNAL_MODULE,
            "src/repro/supervisor/pool.py": """
                def produce(journal):
                    journal.append({"type": "add"})
                    journal.append({"type": "bogus"})
            """,
        }
        full = lint_many(tmp_path, files, only=["PROTO-JOURNAL"])
        changed = run_analysis(
            tmp_path,
            paths=sorted(files),
            only_rules=["PROTO-JOURNAL"],
            report_paths=["src/repro/supervisor/pool.py"],
        )
        assert [f.message for f in changed.new_findings] == [
            f.message
            for f in full.new_findings
            if f.path == "src/repro/supervisor/pool.py"
        ]

    def test_changed_files_runs_in_a_git_checkout(self):
        files = changed_files(REPO_ROOT)
        assert files is None or isinstance(files, list)


# -- fingerprint stability across moves and renames --------------------------


class TestFingerprintStability:
    BAD = """
        import subprocess


        def launch(cmd):
            return subprocess.Popen(cmd)
    """

    def test_rename_and_line_shift_keep_the_baseline_match(self, tmp_path):
        first = lint_many(
            tmp_path / "one",
            {"src/repro/supervisor/a.py": self.BAD},
            only=["FORK-SAFETY"],
        )
        assert len(first.new_findings) == 1
        baseline = Baseline.from_findings(first.new_findings)

        moved = "# moved module\n# with a new header\n\n" + textwrap.dedent(
            self.BAD
        )
        second = lint_many(
            tmp_path / "two",
            {"src/repro/supervisor/renamed.py": moved},
            only=["FORK-SAFETY"],
            baseline=baseline,
        )
        assert second.new_findings == []
        assert len(second.baselined) == 1
        assert (
            second.baselined[0].fingerprint
            == first.new_findings[0].fingerprint
        )
