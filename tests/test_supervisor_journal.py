"""Journal, recovery, and result-cache unit tests.

The crash-safety satellite: torn last lines are clean resumes, anything
worse is a *clear* error — never a crash, never a silent skip.  Plus the
deterministic result cache: hits must be byte-identical and free.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.supervisor import (
    DONE,
    PENDING,
    RUNNING,
    Journal,
    JournalError,
    Manifest,
    ResultCache,
    RunSpec,
    Supervisor,
    spec_digest,
)

#: Small, fast HPL point used throughout.
HPL_PARAMS = {"n": 1000, "nb": 128, "slice_s": 0.02, "dt_s": 0.01}


def _journal(tmp_path, events):
    path = str(tmp_path / "journal.jsonl")
    j = Journal(path)
    j.open_fresh(meta={"k": 1})
    for event in events:
        j.append(event)
    j.close()
    return path


ADD_A = {"type": "add", "run_id": "a", "kind": "hpl", "params": {"n": 4}}


class TestJournalReplay:
    def test_fold_roundtrip(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ADD_A,
                {"type": "add", "run_id": "b", "kind": "hpl", "params": {}},
                {"type": "launch", "run_id": "a", "attempt": 1, "slot": 0,
                 "resume_from": None, "pid": 1234},
                {"type": "done", "run_id": "a", "attempt": 1,
                 "result_path": "a/result.json", "cached": False},
                {"type": "launch", "run_id": "b", "attempt": 1, "slot": 1,
                 "resume_from": None, "pid": 1235},
            ],
        )
        state = Journal.replay(path)
        assert state.meta == {"k": 1}
        assert not state.torn_tail
        assert state.records["a"].status == DONE
        assert state.records["a"].result_path == "a/result.json"
        assert state.records["b"].status == RUNNING
        assert state.records["b"].attempts == 1

    def test_retry_and_migration_fold(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ADD_A,
                {"type": "launch", "run_id": "a", "attempt": 1, "slot": 0,
                 "resume_from": None, "pid": 1},
                {"type": "exit", "run_id": "a", "attempt": 1, "code": -9,
                 "liveness": "stuck", "error": {"type": "StuckWorker"},
                 "checkpoint_path": "a/checkpoint.snap"},
                {"type": "retry", "run_id": "a", "next_attempt": 2,
                 "delay_s": 0.5, "migrated": True, "from_slot": 0},
            ],
        )
        record = Journal.replay(path).records["a"]
        assert record.status == PENDING
        assert record.attempts == 1
        assert record.migrations == 1
        assert record.checkpoint_path == "a/checkpoint.snap"
        assert record.last_error["type"] == "StuckWorker"

    def test_torn_last_line_is_clean_resume(self, tmp_path):
        path = _journal(tmp_path, [ADD_A])
        good_size = os.path.getsize(path)
        with open(path, "a") as fh:
            fh.write('{"type": "done", "run_id": "a", "resu')  # torn append
        state = Journal.replay(path)
        assert state.torn_tail
        assert state.valid_bytes == good_size
        assert state.records["a"].status == PENDING  # torn done dropped

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = _journal(tmp_path, [ADD_A])
        with open(path, "a") as fh:
            fh.write('{"type": "done", "run_id": "a", "resu\n')  # torn + newline
            fh.write(json.dumps({"type": "complete"}) + "\n")
        with pytest.raises(JournalError, match="not the last line"):
            Journal.replay(path)

    def test_version_mismatch_is_an_error(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "header", "version": 999}) + "\n")
        with pytest.raises(JournalError, match="version 999"):
            Journal.replay(path)

    def test_unknown_run_is_an_error(self, tmp_path):
        path = _journal(
            tmp_path,
            [{"type": "done", "run_id": "ghost", "attempt": 1,
              "result_path": "x", "cached": False}],
        )
        with pytest.raises(JournalError, match="unknown run 'ghost'"):
            Journal.replay(path)

    def test_unknown_event_type_is_an_error(self, tmp_path):
        path = _journal(tmp_path, [{"type": "frobnicate", "run_id": "a"}])
        with pytest.raises(JournalError, match="unknown event type"):
            Journal.replay(path)

    def test_duplicate_add_is_an_error(self, tmp_path):
        path = _journal(tmp_path, [ADD_A, ADD_A])
        with pytest.raises(JournalError, match="twice"):
            Journal.replay(path)

    def test_open_append_truncates_torn_tail(self, tmp_path):
        path = _journal(tmp_path, [ADD_A])
        with open(path, "a") as fh:
            fh.write('{"type": "done"')  # crash debris
        state = Journal.replay(path)
        j = Journal(path)
        j.open_append(truncate_to=state.valid_bytes)
        j.append({"type": "complete"})
        j.close()
        # The re-opened journal replays cleanly: debris gone, new event in.
        state2 = Journal.replay(path)
        assert not state2.torn_tail
        assert state2.events == state.events + 1


class TestSupervisorRecovery:
    """End-to-end: a damaged sweep directory resumes or errors clearly."""

    def _completed_sweep(self, tmp_path):
        sup = Supervisor(
            str(tmp_path / "sweep"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=lambda msg: None,
        )
        manifest = sup.run([RunSpec("only", "hpl", dict(HPL_PARAMS))])
        assert manifest.runs["only"].status == DONE
        return sup

    def test_resume_with_torn_journal_tail(self, tmp_path):
        sup = self._completed_sweep(tmp_path)
        with open(sup.journal_path, "a") as fh:
            fh.write('{"type": "launch", "run_id": "only", "att')
        events = []
        sup2 = Supervisor(sup.out_dir, workers=1, log=events.append)
        manifest = sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)
        assert manifest.runs["only"].status == DONE
        assert any("torn line" in e for e in events)
        # The sweep is skipped, not re-run: the done event survived.
        assert any("skipped" in e for e in events)

    def test_resume_with_corrupt_journal_is_a_clear_error(self, tmp_path):
        sup = self._completed_sweep(tmp_path)
        lines = open(sup.journal_path).read().splitlines()
        lines[1] = '{"type": "add", "run_'  # torn line NOT at the end
        with open(sup.journal_path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        sup2 = Supervisor(sup.out_dir, workers=1, log=lambda m: None)
        with pytest.raises(JournalError, match="not the last line"):
            sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)

    def test_resume_with_empty_journal_starts_fresh(self, tmp_path):
        sup = self._completed_sweep(tmp_path)
        open(sup.journal_path, "w").close()  # crash before header fsync
        events = []
        sup2 = Supervisor(
            sup.out_dir,
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=events.append,
        )
        manifest = sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)
        assert manifest.runs["only"].status == DONE
        assert any("starting fresh" in e for e in events)

    def test_resume_from_legacy_manifest_only_dir(self, tmp_path):
        """A pre-journal sweep directory (manifest.json, no journal)
        imports cleanly and resumes under the journal regime."""
        sup = self._completed_sweep(tmp_path)
        os.unlink(sup.journal_path)
        events = []
        sup2 = Supervisor(sup.out_dir, workers=1, log=events.append)
        manifest = sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)
        assert manifest.runs["only"].status == DONE
        assert any("legacy manifest" in e for e in events)
        assert any("skipped" in e for e in events)
        assert os.path.exists(sup.journal_path)

    def test_corrupt_manifest_is_a_clear_error(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as fh:
            fh.write('{"version": 1, "runs": {"a"')  # truncated copy
        with pytest.raises(ValueError, match="corrupt"):
            Manifest.load(path)


class TestResultCache:
    def test_spec_digest_canonical(self):
        a = spec_digest("hpl", {"n": 1000, "nb": 128})
        b = spec_digest("hpl", {"nb": 128, "n": 1000})  # key order irrelevant
        c = spec_digest("hpl", {"n": 1000, "nb": 64})
        assert a == b
        assert a != c
        assert a != spec_digest("flaky-hpl", {"n": 1000, "nb": 128})

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), version="v1")
        assert cache.get("hpl", {"n": 4}) is None
        cache.put("hpl", {"n": 4}, {"gflops": 1.5})
        assert cache.get("hpl", {"n": 4}) == {"gflops": 1.5}

    def test_code_version_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        ResultCache(root, version="v1").put("hpl", {"n": 4}, {"gflops": 1.5})
        assert ResultCache(root, version="v2").get("hpl", {"n": 4}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), version="v1")
        path = cache._path(cache.key("hpl", {"n": 4}))
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            fh.write("{garbage")
        assert cache.get("hpl", {"n": 4}) is None

    def test_cached_resubmission_launches_zero_workers(self, tmp_path):
        """The acceptance bar: an identical resubmitted sweep is served
        entirely from cache — zero subprocess launches, byte-identical
        results."""
        cache_dir = str(tmp_path / "cache")
        specs = [
            RunSpec("r1", "hpl", dict(HPL_PARAMS)),
            RunSpec("r2", "hpl", dict(HPL_PARAMS, n=2000)),
        ]
        sup1 = Supervisor(
            str(tmp_path / "a"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=2,
            cache_dir=cache_dir,
            log=lambda m: None,
        )
        m1 = sup1.run(specs)
        assert all(rec.status == DONE for rec in m1.runs.values())
        assert not any(rec.cached for rec in m1.runs.values())

        sup2 = Supervisor(
            str(tmp_path / "b"),
            workers=2,
            cache_dir=cache_dir,
            log=lambda m: None,
        )
        m2 = sup2.run(specs)
        assert all(rec.status == DONE for rec in m2.runs.values())
        assert all(rec.cached for rec in m2.runs.values())
        # Zero launches: no launch event journaled, no launch counted.
        launches = [
            e
            for e in map(json.loads, open(sup2.journal_path))
            if e["type"] == "launch"
        ]
        assert launches == []
        assert ("fleet.launch", None) not in sup2.metrics.counters
        assert sup2.metrics.counters[("fleet.cache_hit", None)] == 2.0
        # Byte-identical result files.
        for rid in ("r1", "r2"):
            a = open(os.path.join(sup1.out_dir, rid, "result.json"), "rb").read()
            b = open(os.path.join(sup2.out_dir, rid, "result.json"), "rb").read()
            assert a == b


class TestJournalCompaction:
    def _busy_journal(self, tmp_path):
        """A journal with a long event history over three runs."""
        path = str(tmp_path / "journal.jsonl")
        j = Journal(path)
        j.open_fresh(meta={"workers": 2})
        j.append({"type": "add", "run_id": "a", "kind": "hpl", "params": {"n": 1}})
        j.append({"type": "add", "run_id": "b", "kind": "hpl", "params": {"n": 2}})
        j.append({"type": "add", "run_id": "c", "kind": "hpl", "params": {"n": 3}})
        for attempt in (1, 2):
            j.append({"type": "launch", "run_id": "a", "attempt": attempt,
                      "slot": 0, "resume_from": None, "pid": 100 + attempt})
            j.append({"type": "exit", "run_id": "a", "attempt": attempt,
                      "code": -9, "liveness": "stuck",
                      "error": {"type": "StuckWorker"},
                      "checkpoint_path": "a/checkpoint.snap"})
            j.append({"type": "retry", "run_id": "a", "next_attempt": attempt + 1,
                      "delay_s": 0.0, "migrated": True, "from_slot": 0})
        j.append({"type": "launch", "run_id": "b", "attempt": 1, "slot": 1,
                  "resume_from": None, "pid": 200})
        j.append({"type": "done", "run_id": "b", "attempt": 1,
                  "result_path": "b/result.json", "cached": False})
        j.append({"type": "launch", "run_id": "c", "attempt": 1, "slot": 0,
                  "resume_from": None, "pid": 300})
        j.close()
        return path

    def test_compaction_preserves_replayed_state(self, tmp_path):
        path = self._busy_journal(tmp_path)
        before = Journal.replay(path)
        size_before = os.path.getsize(path)
        Journal.compact(path)
        after = Journal.replay(path)
        assert os.path.getsize(path) < size_before
        assert set(after.records) == set(before.records)
        for rid, want in before.records.items():
            assert after.records[rid].to_json() == want.to_json(), rid
        # One full-fidelity add per run, nothing else.
        assert after.events == len(before.records)
        # The RUNNING run kept its pid — a rebooting daemon still knows
        # which orphan to reap after compaction.
        assert after.records["c"].last_pid == 300

    def test_compaction_keeps_the_old_history_as_bak(self, tmp_path):
        path = self._busy_journal(tmp_path)
        before = Journal.replay(path)
        Journal.compact(path)
        bak = Journal.replay(path + ".bak")
        assert bak.events == before.events  # the full history, untouched

    def test_compacted_journal_accepts_appends(self, tmp_path):
        path = self._busy_journal(tmp_path)
        Journal.compact(path)
        j = Journal(path)
        j.open_append()
        j.append({"type": "done", "run_id": "c", "attempt": 1,
                  "result_path": "c/result.json", "cached": False})
        j.close()
        state = Journal.replay(path)
        assert state.records["c"].status == DONE

    def test_compaction_refuses_corrupt_input(self, tmp_path):
        path = self._busy_journal(tmp_path)
        lines = open(path).read().splitlines()
        lines[2] = '{"type": "add", "run_'
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        before = open(path, "rb").read()
        with pytest.raises(JournalError):
            Journal.compact(path)
        # Refusal is side-effect free: the journal bytes are untouched.
        assert open(path, "rb").read() == before


class TestResultCacheEviction:
    def _paths(self, cache, ns):
        return {n: cache._path(cache.key("hpl", {"n": n})) for n in ns}

    def test_max_entries_evicts_oldest(self, tmp_path):
        evicted = []
        cache = ResultCache(
            str(tmp_path / "cache"), version="v1",
            max_entries=2, on_evict=evicted.append,
        )
        for i, n in enumerate((1, 2)):
            cache.put("hpl", {"n": n}, {"gflops": float(n)})
            os.utime(self._paths(cache, [n])[n], (100.0 + i, 100.0 + i))
        cache.put("hpl", {"n": 3}, {"gflops": 3.0})
        assert cache.get("hpl", {"n": 1}) is None  # oldest: gone
        assert cache.get("hpl", {"n": 2}) == {"gflops": 2.0}
        assert cache.get("hpl", {"n": 3}) == {"gflops": 3.0}
        assert cache.evictions == 1
        assert evicted == [1]

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(
            str(tmp_path / "cache"), version="v1", max_entries=2,
        )
        for i, n in enumerate((1, 2)):
            cache.put("hpl", {"n": n}, {"gflops": float(n)})
            os.utime(self._paths(cache, [n])[n], (100.0 + i, 100.0 + i))
        # A hit on the older entry makes it the newest...
        assert cache.get("hpl", {"n": 1}) == {"gflops": 1.0}
        cache.put("hpl", {"n": 3}, {"gflops": 3.0})
        # ... so the eviction falls on n=2 instead.
        assert cache.get("hpl", {"n": 1}) == {"gflops": 1.0}
        assert cache.get("hpl", {"n": 2}) is None

    def test_max_bytes_evicts_down_to_budget(self, tmp_path):
        cache = ResultCache(
            str(tmp_path / "cache"), version="v1", max_bytes=1,
        )
        # A 1-byte budget can hold nothing: every put evicts what is
        # over budget, including the entry it just stored.
        cache.put("hpl", {"n": 1}, {"gflops": 1.0})
        cache.put("hpl", {"n": 2}, {"gflops": 2.0})
        assert cache.get("hpl", {"n": 1}) is None
        assert cache.get("hpl", {"n": 2}) is None
        assert cache.evictions == 2

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), version="v1")
        for n in range(20):
            cache.put("hpl", {"n": n}, {"gflops": float(n)})
        assert cache.evictions == 0
        assert all(
            cache.get("hpl", {"n": n}) == {"gflops": float(n)}
            for n in range(20)
        )


class TestDaemonCrashSafety:
    """SIGKILL the daemon at the worst instants; restart must lose
    nothing and double-run nothing.

    "Nothing lost": every run whose admission was acknowledged (or
    resubmitted — admission is idempotent) reaches ``done``.  "Nothing
    doubled": replay itself proves it — a duplicate ``add`` is a
    :class:`JournalError` — and each run records exactly one ``done``.
    """

    def _assert_exactly_once(self, journal_path, run_ids):
        state = Journal.replay(journal_path)  # raises on duplicated adds
        events = [json.loads(line) for line in open(journal_path)]
        for rid in run_ids:
            assert state.records[rid].status == DONE
            dones = [
                e for e in events
                if e["type"] == "done" and e.get("run_id") == rid
            ]
            assert len(dones) == 1, f"{rid} finished {len(dones)} times"

    def test_sigkill_mid_admission_batch_is_durable(self, tmp_path):
        """The env chaos hook kills the daemon *after* the admission
        batch is fsync'd but *before* anything is enqueued or acked.
        The client saw a transport error; resubmitting after restart
        converges on the already-durable jobs."""
        from tests.test_supervisor_service import _Daemon

        out = str(tmp_path / "svc")
        daemon = _Daemon(
            out, env_extra={"REPRO_SERVICE_KILL_AFTER_ADMIT": "1"}
        )
        specs = [
            RunSpec(f"r{i}", "hpl", dict(HPL_PARAMS, n=1000 + 100 * i))
            for i in range(3)
        ]
        try:
            daemon.wait_ready()
            with pytest.raises(OSError):
                daemon.client(attempts=1).submit(specs)
            assert daemon.proc.wait(timeout=30) != 0  # died by SIGKILL
            # The batch fsync beat the kill: replay already knows them.
            state = Journal.replay(os.path.join(out, "journal.jsonl"))
            assert {s.run_id for s in specs} <= set(state.records)
        finally:
            daemon.stop()

        daemon = _Daemon(out)
        try:
            daemon.wait_ready()
            client = daemon.client()
            verdicts = client.submit(specs)  # idempotent convergence
            assert all(
                v["disposition"] in ("duplicate", "admitted")
                for v in verdicts
            )
            client.wait([s.run_id for s in specs], deadline_s=60)
            client.shutdown()
            daemon.proc.wait(timeout=30)
        finally:
            daemon.stop()
        self._assert_exactly_once(
            os.path.join(out, "journal.jsonl"), [s.run_id for s in specs]
        )

    def test_sigkill_mid_run_reaps_orphan_and_finishes(self, tmp_path):
        """Daemon dies while a worker is wedged mid-run: the worker (its
        own session leader) survives as an orphan.  The rebooted daemon
        must reap it before relaunching the run."""
        import time as _time

        from tests.test_supervisor_service import _Daemon

        out = str(tmp_path / "svc")
        specs = [
            RunSpec("wedge", "flaky-hpl",
                    dict(HPL_PARAMS, stall_at_s=0.03, stall_on_attempts=[1])),
            RunSpec("calm", "hpl", dict(HPL_PARAMS)),
        ]
        daemon = _Daemon(out, extra=("--stuck-after-s", "60"))
        try:
            daemon.wait_ready()
            client = daemon.client()
            client.submit(specs)
            deadline = _time.monotonic() + 30
            pid = None
            while _time.monotonic() < deadline:
                pid = client.status()["in_flight"].get("wedge")
                if pid is not None:
                    break
                _time.sleep(0.02)
            assert pid is not None, "wedged run never launched"
            daemon.sigkill()
            os.kill(pid, 0)  # the worker outlived its daemon: orphaned
        finally:
            daemon.stop()

        daemon = _Daemon(out, extra=("--stuck-after-s", "60"))
        try:
            daemon.wait_ready()
            # Boot reaped the orphan's process group before relaunching.
            deadline = _time.monotonic() + 10
            while _time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                _time.sleep(0.05)
            else:
                raise AssertionError(f"orphan worker {pid} still alive")
            client = daemon.client()
            jobs = client.wait(["wedge", "calm"], deadline_s=60)
            assert all(j["status"] == DONE for j in jobs)
            client.shutdown()
            daemon.proc.wait(timeout=30)
        finally:
            daemon.stop()
        self._assert_exactly_once(
            os.path.join(out, "journal.jsonl"), ["wedge", "calm"]
        )

    def test_sigkill_mid_drain_resumes_clean(self, tmp_path):
        """Drain requested, then SIGKILL before it completes: drain is a
        runtime request, not durable state — the rebooted daemon simply
        finishes the journaled backlog."""
        from tests.test_supervisor_service import _Daemon

        out = str(tmp_path / "svc")
        specs = [
            RunSpec(f"r{i}", "hpl", dict(HPL_PARAMS, n=1000 + 100 * i))
            for i in range(4)
        ]
        daemon = _Daemon(out)
        try:
            daemon.wait_ready()
            client = daemon.client()
            client.submit(specs)
            client.drain()
            daemon.sigkill()
        finally:
            daemon.stop()

        daemon = _Daemon(out)
        try:
            daemon.wait_ready()
            client = daemon.client()
            jobs = client.wait([s.run_id for s in specs], deadline_s=60)
            assert all(j["status"] == DONE for j in jobs)
            client.shutdown()
            daemon.proc.wait(timeout=30)
        finally:
            daemon.stop()
        self._assert_exactly_once(
            os.path.join(out, "journal.jsonl"), [s.run_id for s in specs]
        )

    def test_daemon_boot_compacts_an_oversized_journal(self, tmp_path):
        """Past the size threshold, `serve` compacts on boot: same
        replayed state, smaller file, old history in the .bak."""
        from tests.test_supervisor_service import _Daemon

        out = str(tmp_path / "svc")
        # A first daemon builds up real history.
        daemon = _Daemon(out)
        specs = [
            RunSpec(f"r{i}", "hpl", dict(HPL_PARAMS, n=1000 + 100 * i))
            for i in range(3)
        ]
        try:
            daemon.wait_ready()
            client = daemon.client()
            client.submit(specs)
            client.wait([s.run_id for s in specs], deadline_s=60)
            client.shutdown()
            daemon.proc.wait(timeout=30)
        finally:
            daemon.stop()

        journal_path = os.path.join(out, "journal.jsonl")
        before = Journal.replay(journal_path)
        size_before = os.path.getsize(journal_path)

        daemon = _Daemon(out, extra=("--compact-threshold-bytes", "64"))
        try:
            daemon.wait_ready()
            client = daemon.client()
            # Still answers from the (compacted) journal: zero launches.
            verdicts = client.submit(specs)
            assert all(v["disposition"] == "duplicate" for v in verdicts)
            assert all(v["status"] == DONE for v in verdicts)
            client.shutdown()
            daemon.proc.wait(timeout=30)
        finally:
            daemon.stop()

        assert os.path.exists(journal_path + ".bak")
        after = Journal.replay(journal_path)
        assert set(after.records) == set(before.records)
        for rid in before.records:
            assert after.records[rid].status == before.records[rid].status
        # Compacted boot state was smaller than the full history.
        bak_size = os.path.getsize(journal_path + ".bak")
        assert bak_size == size_before
