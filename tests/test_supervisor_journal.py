"""Journal, recovery, and result-cache unit tests.

The crash-safety satellite: torn last lines are clean resumes, anything
worse is a *clear* error — never a crash, never a silent skip.  Plus the
deterministic result cache: hits must be byte-identical and free.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.supervisor import (
    DONE,
    PENDING,
    RUNNING,
    Journal,
    JournalError,
    Manifest,
    ResultCache,
    RunSpec,
    Supervisor,
    spec_digest,
)

#: Small, fast HPL point used throughout.
HPL_PARAMS = {"n": 1000, "nb": 128, "slice_s": 0.02, "dt_s": 0.01}


def _journal(tmp_path, events):
    path = str(tmp_path / "journal.jsonl")
    j = Journal(path)
    j.open_fresh(meta={"k": 1})
    for event in events:
        j.append(event)
    j.close()
    return path


ADD_A = {"type": "add", "run_id": "a", "kind": "hpl", "params": {"n": 4}}


class TestJournalReplay:
    def test_fold_roundtrip(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ADD_A,
                {"type": "add", "run_id": "b", "kind": "hpl", "params": {}},
                {"type": "launch", "run_id": "a", "attempt": 1, "slot": 0,
                 "resume_from": None, "pid": 1234},
                {"type": "done", "run_id": "a", "attempt": 1,
                 "result_path": "a/result.json", "cached": False},
                {"type": "launch", "run_id": "b", "attempt": 1, "slot": 1,
                 "resume_from": None, "pid": 1235},
            ],
        )
        state = Journal.replay(path)
        assert state.meta == {"k": 1}
        assert not state.torn_tail
        assert state.records["a"].status == DONE
        assert state.records["a"].result_path == "a/result.json"
        assert state.records["b"].status == RUNNING
        assert state.records["b"].attempts == 1

    def test_retry_and_migration_fold(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ADD_A,
                {"type": "launch", "run_id": "a", "attempt": 1, "slot": 0,
                 "resume_from": None, "pid": 1},
                {"type": "exit", "run_id": "a", "attempt": 1, "code": -9,
                 "liveness": "stuck", "error": {"type": "StuckWorker"},
                 "checkpoint_path": "a/checkpoint.snap"},
                {"type": "retry", "run_id": "a", "next_attempt": 2,
                 "delay_s": 0.5, "migrated": True, "from_slot": 0},
            ],
        )
        record = Journal.replay(path).records["a"]
        assert record.status == PENDING
        assert record.attempts == 1
        assert record.migrations == 1
        assert record.checkpoint_path == "a/checkpoint.snap"
        assert record.last_error["type"] == "StuckWorker"

    def test_torn_last_line_is_clean_resume(self, tmp_path):
        path = _journal(tmp_path, [ADD_A])
        good_size = os.path.getsize(path)
        with open(path, "a") as fh:
            fh.write('{"type": "done", "run_id": "a", "resu')  # torn append
        state = Journal.replay(path)
        assert state.torn_tail
        assert state.valid_bytes == good_size
        assert state.records["a"].status == PENDING  # torn done dropped

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = _journal(tmp_path, [ADD_A])
        with open(path, "a") as fh:
            fh.write('{"type": "done", "run_id": "a", "resu\n')  # torn + newline
            fh.write(json.dumps({"type": "complete"}) + "\n")
        with pytest.raises(JournalError, match="not the last line"):
            Journal.replay(path)

    def test_version_mismatch_is_an_error(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "header", "version": 999}) + "\n")
        with pytest.raises(JournalError, match="version 999"):
            Journal.replay(path)

    def test_unknown_run_is_an_error(self, tmp_path):
        path = _journal(
            tmp_path,
            [{"type": "done", "run_id": "ghost", "attempt": 1,
              "result_path": "x", "cached": False}],
        )
        with pytest.raises(JournalError, match="unknown run 'ghost'"):
            Journal.replay(path)

    def test_unknown_event_type_is_an_error(self, tmp_path):
        path = _journal(tmp_path, [{"type": "frobnicate", "run_id": "a"}])
        with pytest.raises(JournalError, match="unknown event type"):
            Journal.replay(path)

    def test_duplicate_add_is_an_error(self, tmp_path):
        path = _journal(tmp_path, [ADD_A, ADD_A])
        with pytest.raises(JournalError, match="twice"):
            Journal.replay(path)

    def test_open_append_truncates_torn_tail(self, tmp_path):
        path = _journal(tmp_path, [ADD_A])
        with open(path, "a") as fh:
            fh.write('{"type": "done"')  # crash debris
        state = Journal.replay(path)
        j = Journal(path)
        j.open_append(truncate_to=state.valid_bytes)
        j.append({"type": "complete"})
        j.close()
        # The re-opened journal replays cleanly: debris gone, new event in.
        state2 = Journal.replay(path)
        assert not state2.torn_tail
        assert state2.events == state.events + 1


class TestSupervisorRecovery:
    """End-to-end: a damaged sweep directory resumes or errors clearly."""

    def _completed_sweep(self, tmp_path):
        sup = Supervisor(
            str(tmp_path / "sweep"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=lambda msg: None,
        )
        manifest = sup.run([RunSpec("only", "hpl", dict(HPL_PARAMS))])
        assert manifest.runs["only"].status == DONE
        return sup

    def test_resume_with_torn_journal_tail(self, tmp_path):
        sup = self._completed_sweep(tmp_path)
        with open(sup.journal_path, "a") as fh:
            fh.write('{"type": "launch", "run_id": "only", "att')
        events = []
        sup2 = Supervisor(sup.out_dir, workers=1, log=events.append)
        manifest = sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)
        assert manifest.runs["only"].status == DONE
        assert any("torn line" in e for e in events)
        # The sweep is skipped, not re-run: the done event survived.
        assert any("skipped" in e for e in events)

    def test_resume_with_corrupt_journal_is_a_clear_error(self, tmp_path):
        sup = self._completed_sweep(tmp_path)
        lines = open(sup.journal_path).read().splitlines()
        lines[1] = '{"type": "add", "run_'  # torn line NOT at the end
        with open(sup.journal_path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        sup2 = Supervisor(sup.out_dir, workers=1, log=lambda m: None)
        with pytest.raises(JournalError, match="not the last line"):
            sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)

    def test_resume_with_empty_journal_starts_fresh(self, tmp_path):
        sup = self._completed_sweep(tmp_path)
        open(sup.journal_path, "w").close()  # crash before header fsync
        events = []
        sup2 = Supervisor(
            sup.out_dir,
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=1,
            log=events.append,
        )
        manifest = sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)
        assert manifest.runs["only"].status == DONE
        assert any("starting fresh" in e for e in events)

    def test_resume_from_legacy_manifest_only_dir(self, tmp_path):
        """A pre-journal sweep directory (manifest.json, no journal)
        imports cleanly and resumes under the journal regime."""
        sup = self._completed_sweep(tmp_path)
        os.unlink(sup.journal_path)
        events = []
        sup2 = Supervisor(sup.out_dir, workers=1, log=events.append)
        manifest = sup2.run([RunSpec("only", "hpl", dict(HPL_PARAMS))], resume=True)
        assert manifest.runs["only"].status == DONE
        assert any("legacy manifest" in e for e in events)
        assert any("skipped" in e for e in events)
        assert os.path.exists(sup.journal_path)

    def test_corrupt_manifest_is_a_clear_error(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as fh:
            fh.write('{"version": 1, "runs": {"a"')  # truncated copy
        with pytest.raises(ValueError, match="corrupt"):
            Manifest.load(path)


class TestResultCache:
    def test_spec_digest_canonical(self):
        a = spec_digest("hpl", {"n": 1000, "nb": 128})
        b = spec_digest("hpl", {"nb": 128, "n": 1000})  # key order irrelevant
        c = spec_digest("hpl", {"n": 1000, "nb": 64})
        assert a == b
        assert a != c
        assert a != spec_digest("flaky-hpl", {"n": 1000, "nb": 128})

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), version="v1")
        assert cache.get("hpl", {"n": 4}) is None
        cache.put("hpl", {"n": 4}, {"gflops": 1.5})
        assert cache.get("hpl", {"n": 4}) == {"gflops": 1.5}

    def test_code_version_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        ResultCache(root, version="v1").put("hpl", {"n": 4}, {"gflops": 1.5})
        assert ResultCache(root, version="v2").get("hpl", {"n": 4}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), version="v1")
        path = cache._path(cache.key("hpl", {"n": 4}))
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            fh.write("{garbage")
        assert cache.get("hpl", {"n": 4}) is None

    def test_cached_resubmission_launches_zero_workers(self, tmp_path):
        """The acceptance bar: an identical resubmitted sweep is served
        entirely from cache — zero subprocess launches, byte-identical
        results."""
        cache_dir = str(tmp_path / "cache")
        specs = [
            RunSpec("r1", "hpl", dict(HPL_PARAMS)),
            RunSpec("r2", "hpl", dict(HPL_PARAMS, n=2000)),
        ]
        sup1 = Supervisor(
            str(tmp_path / "a"),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=2,
            cache_dir=cache_dir,
            log=lambda m: None,
        )
        m1 = sup1.run(specs)
        assert all(rec.status == DONE for rec in m1.runs.values())
        assert not any(rec.cached for rec in m1.runs.values())

        sup2 = Supervisor(
            str(tmp_path / "b"),
            workers=2,
            cache_dir=cache_dir,
            log=lambda m: None,
        )
        m2 = sup2.run(specs)
        assert all(rec.status == DONE for rec in m2.runs.values())
        assert all(rec.cached for rec in m2.runs.values())
        # Zero launches: no launch event journaled, no launch counted.
        launches = [
            e
            for e in map(json.loads, open(sup2.journal_path))
            if e["type"] == "launch"
        ]
        assert launches == []
        assert ("fleet.launch", None) not in sup2.metrics.counters
        assert sup2.metrics.counters[("fleet.cache_hit", None)] == 2.0
        # Byte-identical result files.
        for rid in ("r1", "r2"):
            a = open(os.path.join(sup1.out_dir, rid, "result.json"), "rb").read()
            b = open(os.path.join(sup2.out_dir, rid, "result.json"), "rb").read()
            assert a == b
