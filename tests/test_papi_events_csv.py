"""PAPI_events.csv preset definitions (§V-2's format extension)."""

import pytest

from repro.papi import Papi, PapiError
from repro.papi.events_csv import (
    DEFAULT_EVENTS_CSV,
    load_preset_table,
    parse_events_csv,
)
from repro.pfmlib import Pfmlib
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

RATES = constant_rates(PhaseRates(ipc=2.0))


class TestParser:
    def test_parses_rows_and_comments(self):
        table = parse_events_csv(
            "# comment\n"
            "PRESET,PAPI_TOT_INS,adl coretype:glc,INST_RETIRED:ANY\n"
            "\n"
            "PRESET,PAPI_TOT_INS,skx,INST_RETIRED:ANY\n"
        )
        rows = table.rows["PAPI_TOT_INS"]
        assert len(rows) == 2
        assert rows[0].base_key == "adl"
        assert rows[0].coretype == "glc"
        assert rows[1].coretype is None

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="PRESET rows"):
            parse_events_csv("EVENT,PAPI_X,adl,FOO\n")
        with pytest.raises(ValueError, match="4 fields"):
            parse_events_csv("PRESET,PAPI_X,adl\n")
        with pytest.raises(ValueError, match="PAPI_"):
            parse_events_csv("PRESET,TOT_INS,adl,FOO\n")

    def test_default_csv_parses(self):
        table = parse_events_csv(DEFAULT_EVENTS_CSV)
        assert "PAPI_TOT_INS" in table.presets()


class TestResolution:
    def test_hybrid_rows_expand_to_derived_add(self, raptor):
        pfm = Pfmlib(raptor)
        table = parse_events_csv(DEFAULT_EVENTS_CSV)
        resolved = load_preset_table(table, pfm, hybrid_aware=True)
        r = resolved["PAPI_TOT_INS"]
        assert r.derived == "DERIVED_ADD"
        assert r.natives == [
            "adl_glc::INST_RETIRED:ANY",
            "adl_grt::INST_RETIRED:ANY",
        ]

    def test_homogeneous_single_row(self, xeon):
        pfm = Pfmlib(xeon)
        resolved = load_preset_table(
            parse_events_csv(DEFAULT_EVENTS_CSV), pfm, hybrid_aware=True
        )
        r = resolved["PAPI_TOT_INS"]
        assert r.derived == "NOT_DERIVED"
        assert r.natives == ["skx::INST_RETIRED:ANY"]

    def test_old_parser_cannot_map_hybrid(self, raptor):
        """Plain family/model rows are ambiguous on a hybrid machine."""
        pfm = Pfmlib(raptor)
        table = parse_events_csv("PRESET,PAPI_TOT_INS,adl,INST_RETIRED:ANY\n")
        with pytest.raises(PapiError):
            load_preset_table(table, pfm, hybrid_aware=False)

    def test_old_parser_skips_coretype_rows(self, xeon):
        """Coretype rows are invisible to the old parser, but plain rows
        on homogeneous machines still resolve."""
        pfm = Pfmlib(xeon)
        table = parse_events_csv(
            "PRESET,PAPI_TOT_INS,adl coretype:glc,INST_RETIRED:ANY\n"
            "PRESET,PAPI_TOT_INS,skx,INST_RETIRED:ANY\n"
        )
        resolved = load_preset_table(table, pfm, hybrid_aware=False)
        assert resolved["PAPI_TOT_INS"].natives == ["skx::INST_RETIRED:ANY"]

    def test_arm_rows(self, orangepi):
        pfm = Pfmlib(orangepi)
        resolved = load_preset_table(
            parse_events_csv(DEFAULT_EVENTS_CSV), pfm, hybrid_aware=True
        )
        r = resolved["PAPI_TOT_INS"]
        assert r.derived == "DERIVED_ADD"
        assert set(r.natives) == {
            "arm_a53::INST_RETIRED:ANY",
            "arm_a72::INST_RETIRED:ANY",
        }


class TestPapiIntegration:
    def test_csv_preset_counts_across_core_types(self, raptor):
        papi = Papi(raptor, preset_csv=DEFAULT_EVENTS_CSV)
        e_cpu = raptor.topology.cpus_of_type("E-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={e_cpu})
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        entry = papi.eventset(es).entries[0]
        assert entry.derived == "DERIVED_ADD"
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        assert papi.stop(es)[0] == pytest.approx(1e6)

    def test_csv_preset_takes_precedence(self, raptor):
        """A CSV that maps PAPI_TOT_INS to cycles overrides the builtin."""
        csv_text = (
            "PRESET,PAPI_TOT_INS,adl coretype:glc,CPU_CLK_UNHALTED:THREAD\n"
        )
        papi = Papi(raptor, preset_csv=csv_text)
        p_cpu = raptor.topology.cpus_of_type("P-core")[0]
        t = raptor.machine.spawn(
            SimThread("app", Program([ComputePhase(1e6, RATES)]), affinity={p_cpu})
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, "PAPI_TOT_INS")
        papi.start(es)
        raptor.machine.run_until_done([t], max_s=5)
        # Counting cycles (IPC 2 -> half the instructions).
        assert papi.stop(es)[0] == pytest.approx(5e5)
