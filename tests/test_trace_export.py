"""Exporter conformance: Chrome trace-event JSON and the text dump.

The Chrome document must satisfy the trace-event format contract that
Perfetto / ``chrome://tracing`` enforce: every entry carries ``ph``,
``ts``, ``pid`` and ``tid``; duration events balance (every ``E`` has a
matching earlier ``B`` on its (pid, tid) track, and nothing is left open
at the end); the document is strict JSON even when PAPI reads contain
NaN after a sensor fault.  The text dump must round-trip exactly
through ``parse_text``.
"""

from __future__ import annotations

import json

import pytest

from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System
from repro.trace import parse_text, save_chrome, to_chrome, to_text

MACHINE = "raptor-lake-i7-13700"
RATES = PhaseRates(
    ipc=2.0,
    flops_per_instr=0.5,
    llc_refs_per_instr=0.01,
    llc_miss_rate=0.3,
    l2_refs_per_instr=0.05,
    l2_miss_rate=0.2,
)


@pytest.fixture(scope="module")
def traced_events():
    system = System(MACHINE, dt_s=0.01, seed=7, migrate_jitter=0.03, trace=True)
    papi = Papi(system)
    rates = constant_rates(RATES)
    threads = [
        system.machine.spawn(
            SimThread(f"w{i}", Program([ComputePhase(3e9, rates)]))
        )
        for i in range(2)
    ]
    es = papi.create_eventset()
    papi.attach(es, threads[0])
    papi.add_event(es, "PAPI_TOT_INS")
    papi.start(es)
    system.machine.run_for(0.4)
    papi.stop(es)
    return system.tracer.events_list()


class TestChromeExport:
    def test_required_fields_present(self, traced_events):
        doc = to_chrome(traced_events)
        assert doc["traceEvents"]
        for entry in doc["traceEvents"]:
            for field in ("ph", "ts", "pid", "tid", "name", "cat"):
                assert field in entry, f"missing {field}: {entry}"
            assert entry["ph"] in ("B", "E", "i", "C", "M")
            assert isinstance(entry["ts"], float)

    def test_duration_events_balance(self, traced_events):
        depth: dict[tuple, int] = {}
        last_b_ts: dict[tuple, float] = {}
        for entry in to_chrome(traced_events)["traceEvents"]:
            key = (entry["pid"], entry["tid"])
            if entry["ph"] == "B":
                depth[key] = depth.get(key, 0) + 1
                last_b_ts[key] = entry["ts"]
            elif entry["ph"] == "E":
                assert depth.get(key, 0) > 0, f"unmatched E on {key}"
                assert entry["ts"] >= last_b_ts[key]
                depth[key] -= 1
        assert all(n == 0 for n in depth.values()), f"unclosed spans: {depth}"

    def test_truncated_ring_drops_orphan_ends(self, traced_events):
        # Simulate a ring that lost its oldest events: the exporter must
        # drop end-events whose begin fell off the horizon, not emit an
        # unbalanced E.
        tail = traced_events[len(traced_events) // 2:]
        depth: dict[tuple, int] = {}
        for entry in to_chrome(tail)["traceEvents"]:
            key = (entry["pid"], entry["tid"])
            if entry["ph"] == "B":
                depth[key] = depth.get(key, 0) + 1
            elif entry["ph"] == "E":
                assert depth.get(key, 0) > 0, f"unmatched E on {key}"
                depth[key] -= 1

    def test_process_metadata_and_strict_json(self, traced_events, tmp_path):
        path = str(tmp_path / "out.trace.json")
        save_chrome(path, traced_events, label="conformance")
        with open(path) as fh:
            doc = json.load(fh)
        # Python's parser accepts NaN/Infinity by default; Perfetto does
        # not, so re-parse in strict mode.
        with open(path) as fh:
            json.loads(fh.read(), parse_constant=lambda c: pytest.fail(
                f"non-strict JSON constant {c} in exported document"
            ))
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"sched", "papi", "hardware", "kernel.perf", "faults"}
        assert doc["otherData"]["generator"] == "conformance"

    def test_nan_args_exported_as_strict_json(self):
        events = [
            (0.1, "papi", "read", None, None, {"esid": 1, "values": [float("nan")]}),
            (0.2, "papi", "stop", None, None, {"esid": 1, "values": [float("inf")]}),
        ]
        text = json.dumps(to_chrome(events), allow_nan=False)  # raises if NaN leaks
        json.loads(text)

    def test_counter_series_for_dvfs_and_rapl(self, traced_events):
        entries = to_chrome(traced_events)["traceEvents"]
        counters = [e for e in entries if e["ph"] == "C"]
        assert any(e["name"].startswith("freq_mhz[") for e in counters)
        assert any(e["name"] == "rapl_energy_j" for e in counters)


class TestTextDump:
    def test_round_trip_exact(self, traced_events):
        assert parse_text(to_text(traced_events)) == traced_events

    def test_round_trip_preserves_float_precision(self):
        events = [
            (0.30000000000000004, "dvfs", "freq", None, None, {"to_mhz": 5100.0}),
            (1e-12, "sched", "switch_in", 7, 3, None),
        ]
        assert parse_text(to_text(events)) == events

    def test_header_and_comments_skipped(self):
        text = to_text([(0.0, "sched", "switch_in", 1, 0, None)])
        assert text.startswith("#")
        assert parse_text("\n# comment\n\n" + text) == [
            (0.0, "sched", "switch_in", 1, 0, None)
        ]

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_text("# header\n0.0 sched switch_in bogus\n")
