"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hpl import HplConfig, hpl_flops, hpl_steps
from repro.hpl.runner import HplCoordinator
from repro.hpl.variants import VARIANTS
from repro.hw.cache import LlcModel
from repro.hw.machines import _gracemont, _raptor_cove
from repro.hw.rapl import RaplDomain
from repro.kernel.sched.affinity import format_cpu_list, parse_cpu_list
from repro.pfmlib.parser import parse_event_string

SLOW = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------- cpu lists

@given(st.sets(st.integers(min_value=0, max_value=512), max_size=64))
def test_cpu_list_roundtrip(cpus):
    assert parse_cpu_list(format_cpu_list(cpus)) == cpus


@given(st.sets(st.integers(min_value=0, max_value=200), min_size=1, max_size=64))
def test_cpu_list_format_is_canonical(cpus):
    text = format_cpu_list(cpus)
    # Formatting what we parsed back produces the identical string.
    assert format_cpu_list(parse_cpu_list(text)) == text


# --------------------------------------------------------------- parser

_name = st.from_regex(r"[A-Z][A-Z0-9_]{0,12}", fullmatch=True)


@given(pmu=st.none() | st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
       event=_name, attrs=st.lists(_name, max_size=2))
def test_event_string_roundtrip(pmu, event, attrs):
    text = (f"{pmu}::" if pmu else "") + ":".join([event, *attrs])
    parsed = parse_event_string(text)
    assert parsed.event == event
    assert parsed.attrs == tuple(attrs)
    assert parse_event_string(parsed.canonical()) == parsed


# --------------------------------------------------------------- power model

@given(
    f=st.floats(min_value=0.2, max_value=6.0),
    busy=st.floats(min_value=0.0, max_value=1.0),
)
def test_core_power_positive_and_bounded_by_busy(f, busy):
    p = _raptor_cove().power
    w = p.core_power(f, busy)
    assert w >= p.leak_w
    assert w <= p.core_power(f, 1.0) + 1e-12


@given(
    budget=st.floats(min_value=0.0, max_value=50.0),
    busy=st.floats(min_value=0.05, max_value=1.0),
)
def test_freq_for_power_meets_budget(budget, busy):
    ct = _gracemont()
    f = ct.power.freq_for_power(budget, busy, ct.min_freq_ghz, ct.max_freq_ghz)
    assert ct.min_freq_ghz <= f <= ct.max_freq_ghz
    # Unless pinned at the floor, the chosen frequency fits the budget.
    if f > ct.min_freq_ghz * 1.001:
        assert ct.power.core_power(f, busy) <= budget * 1.001


# --------------------------------------------------------------- cache model

@given(
    ws=st.floats(min_value=0.01, max_value=1e5),
    reuse=st.floats(min_value=0.0, max_value=1.0),
    sharers=st.integers(min_value=1, max_value=64),
)
def test_missrate_in_unit_interval(ws, reuse, sharers):
    m = LlcModel(30.0).miss_rate(ws, reuse, sharers)
    assert 0.0 < m <= 1.0


@given(
    ws=st.floats(min_value=31.0, max_value=1e4),
    r1=st.floats(min_value=0.0, max_value=1.0),
    r2=st.floats(min_value=0.0, max_value=1.0),
)
def test_better_blocking_never_hurts(ws, r1, r2):
    llc = LlcModel(30.0)
    lo, hi = sorted((r1, r2))
    assert llc.miss_rate(ws, hi, 8) <= llc.miss_rate(ws, lo, 8) + 1e-12


# --------------------------------------------------------------- RAPL

@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=500.0),
    st.floats(min_value=1e-4, max_value=10.0)),
    min_size=1, max_size=50))
def test_energy_monotone_and_consistent(samples):
    d = RaplDomain("pkg")
    expected = 0.0
    last = 0.0
    for power, dt in samples:
        d.accumulate(power, dt)
        expected += power * dt
        assert d.energy_j >= last
        last = d.energy_j
    assert d.energy_j == pytest.approx(expected, rel=1e-9)
    assert 0 <= d.read_raw() < 2**32


# --------------------------------------------------------------- HPL model

@given(
    n=st.integers(min_value=256, max_value=20000),
    nb=st.sampled_from([64, 128, 192, 256]),
)
def test_hpl_steps_conserve_flops(n, nb):
    cfg = HplConfig(n=n, nb=nb)
    steps = hpl_steps(cfg)
    assert sum(s.total_flops for s in steps) == pytest.approx(
        hpl_flops(n), rel=1e-9
    )
    assert all(s.update_flops >= 0 and s.panel_flops >= 0 for s in steps)


@SLOW
@given(
    n=st.integers(min_value=512, max_value=4096),
    threads=st.integers(min_value=1, max_value=8),
    variant=st.sampled_from(["openblas", "intel"]),
)
def test_coordinator_conserves_update_work(n, threads, variant):
    """Static chunks + drained dynamic pool == the step's update flops."""
    cfg = HplConfig(n=n, nb=128)
    steps = hpl_steps(cfg)
    var = VARIANTS[variant]
    ctypes = [_raptor_cove()] * threads
    coord = HplCoordinator(steps, var, ctypes)
    for i, step in enumerate(steps):
        handed_out = coord.static_flops[i] * threads
        while True:
            got = coord.claim(i)
            if got <= 0:
                break
            handed_out += got
        assert handed_out == pytest.approx(step.update_flops, rel=1e-9)


# --------------------------------------------------------------- engine

@SLOW
@given(
    instructions=st.floats(min_value=1e4, max_value=5e7),
    ipc=st.floats(min_value=0.25, max_value=6.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_engine_conserves_instructions(instructions, ipc, seed):
    """No matter the scheduling, exactly the requested work retires."""
    from repro.hw.coretype import ArchEvent
    from repro.sim.task import Program, SimThread
    from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
    from repro.system import System

    system = System(
        "raptor-lake-i7-13700",
        dt_s=2e-4,
        seed=seed,
        migrate_jitter=0.05,
        rebalance_jitter=0.05,
    )
    rates = constant_rates(PhaseRates(ipc=ipc))
    t = system.machine.spawn(SimThread("w", Program([ComputePhase(instructions, rates)])))
    assert system.machine.run_until_done([t], max_s=60)
    assert t.counters_total()[ArchEvent.INSTRUCTIONS] == pytest.approx(
        instructions, rel=1e-9
    )


@SLOW
@given(seed=st.integers(min_value=0, max_value=50))
def test_perf_counts_partition_across_pmus(seed):
    """time_enabled >= time_running and per-PMU counts sum to the total."""
    from repro.kernel.perf import PerfEventAttr
    from repro.kernel.perf.subsystem import PerfIoctl
    from repro.sim.task import Program, SimThread
    from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
    from repro.system import System

    system = System(
        "raptor-lake-i7-13700", dt_s=2e-4, seed=seed,
        migrate_jitter=0.1, rebalance_jitter=0.1,
    )
    rates = constant_rates(PhaseRates(ipc=2.0))
    t = system.machine.spawn(SimThread("w", Program([ComputePhase(1e7, rates)])))
    fds = []
    for pmu in ("cpu_core", "cpu_atom"):
        ptype = system.perf.registry.by_name[pmu].type
        fd = system.perf.perf_event_open(
            PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
        )
        system.perf.ioctl(fd, PerfIoctl.ENABLE)
        fds.append(fd)
    system.machine.run_until_done([t], max_s=60)
    readings = [system.perf.read(fd) for fd in fds]
    total = sum(r.value for r in readings)
    assert total == pytest.approx(1e7, rel=1e-6)
    for r in readings:
        assert r.time_enabled_ns >= r.time_running_ns >= 0
