"""Invariants every machine preset must satisfy.

Guards against calibration edits breaking the physical consistency the
experiments rely on.
"""

import pytest

from repro.hw.machines import MACHINE_PRESETS
from repro.hw.power import CorePowerState, PowerModel
from repro.hw.thermal import ThermalModel
from repro.system import System


@pytest.fixture(params=sorted(MACHINE_PRESETS), ids=sorted(MACHINE_PRESETS))
def spec(request):
    return MACHINE_PRESETS[request.param]()


class TestPresetInvariants:
    def test_topology_nonempty_and_consistent(self, spec):
        assert spec.topology.n_cpus >= 1
        for core in spec.topology.cores:
            assert spec.topology.core(core.cpu_id) is core
        # Clusters partition the CPUs.
        seen = []
        for cl in spec.topology.clusters:
            seen.extend(cl.cpu_ids)
        assert sorted(seen) == [c.cpu_id for c in spec.topology.cores]

    def test_power_curve_sane(self, spec):
        for ct in spec.topology.core_types:
            idle = ct.power.core_power(ct.min_freq_ghz, 0.0)
            busy_min = ct.power.core_power(ct.min_freq_ghz, 1.0)
            busy_max = ct.power.core_power(ct.max_freq_ghz, 1.0)
            assert 0 < idle < busy_min < busy_max
            assert busy_max < 50.0  # no preposterous cores

    def test_max_power_vs_rapl_limits(self, spec):
        model = PowerModel(spec)
        max_w = model.max_package_w()
        if spec.has_rapl:
            # The hardware can exceed PL1 (else capping is meaningless)
            # but stays within ~1.2x of PL2 (silicon is sized to its cap).
            assert max_w > spec.rapl_pl1_w
            assert max_w < spec.rapl_pl2_w * 1.2

    def test_thermal_budget_above_idle(self, spec):
        tm = ThermalModel(spec)
        idle_w = PowerModel(spec).sample(
            [CorePowerState() for _ in spec.topology.cores],
            [cl.ctype.min_freq_mhz for cl in spec.topology.clusters],
        ).package_w
        assert tm.sustainable_power_w > idle_w

    def test_capacity_normalization(self, spec):
        caps = [spec.topology.capacity_of(c.cpu_id) for c in spec.topology.cores]
        assert max(caps) == 1024
        assert min(caps) > 0

    def test_llc_declared(self, spec):
        assert float(spec.extra.get("llc_mib", 0)) > 0

    def test_pmu_names_unique_per_core_type(self, spec):
        names = [ct.pmu_name for ct in spec.topology.core_types]
        assert len(names) == len(set(names))

    def test_pfm_tables_exist(self, spec):
        from repro.pfmlib.tables import ALL_TABLES

        for ct in spec.topology.core_types:
            assert ct.pfm_pmu in ALL_TABLES, ct.pfm_pmu

    def test_eventcodes_exist(self, spec):
        from repro.hw.eventcodes import CODES_BY_PFM_PMU

        for ct in spec.topology.core_types:
            assert ct.pfm_pmu in CODES_BY_PFM_PMU, ct.pfm_pmu

    def test_system_boots_and_idles(self, spec):
        system = System(spec, dt_s=0.01)
        system.machine.run_ticks(50)
        # An idle machine stays cool and draws little power.
        assert system.machine.thermal.temp_c < spec.thermal_trip_c
        assert system.machine.last_power.package_w < 25.0

    def test_detection_matches_truth(self, spec):
        from repro.papi import detect_core_types

        system = System(spec, dt_s=0.01)
        report = detect_core_types(system)
        assert len(report.consensus) == len(spec.topology.core_types)
